open Rtr_geom
module Graph = Rtr_graph.Graph
module Damage = Rtr_failure.Damage
module Multi_area = Rtr_core.Multi_area
module Path = Rtr_graph.Path
module Embedding = Rtr_topo.Embedding

(* A long ladder: two failure discs hit the bottom rail at different
   places, so a recovery path around the first area runs into the
   second.  Layout (y up):

     10 - 11 - 12 - 13 - 14   (top rail, y = 100)
      |    |    |    |    |
      0 -  1 -  2 -  3 -  4   (bottom rail, y = 0)
*)
let ladder () =
  let pts =
    Array.init 10 (fun i ->
        Point.make
          (float_of_int (i mod 5) *. 100.0)
          (if i < 5 then 0.0 else 100.0))
  in
  let bottom = List.init 4 (fun i -> (i, i + 1)) in
  let top = List.init 4 (fun i -> (i + 5, i + 6)) in
  let rungs = List.init 5 (fun i -> (i, i + 5)) in
  let g = Graph.build ~n:10 ~edges:(bottom @ top @ rungs) in
  Rtr_topo.Topology.create ~name:"ladder" g (Embedding.of_points pts)

let two_area_damage topo =
  let g = Rtr_topo.Topology.graph topo in
  (* Area 1 cuts bottom link 1-2; area 2 cuts top link 7-8 (the path a
     first recovery naturally takes). *)
  let d1 =
    Damage.of_failed g ~nodes:[]
      ~links:[ Option.get (Graph.find_link g 1 2) ]
  in
  let d2 =
    Damage.of_failed g ~nodes:[]
      ~links:[ Option.get (Graph.find_link g 7 8) ]
  in
  Damage.merge d1 d2

let test_two_areas_recovered () =
  let topo = ladder () in
  let damage = two_area_damage topo in
  let r =
    Multi_area.recover topo damage ~initiator:1 ~trigger:2 ~dst:4 ()
  in
  Alcotest.(check bool) "delivered" true r.Multi_area.delivered;
  let journey = Option.get r.Multi_area.journey in
  Alcotest.(check int) "journey starts at the initiator" 1 (Path.source journey);
  Alcotest.(check int) "journey ends at the destination" 4
    (Path.destination journey);
  Alcotest.(check bool) "journey survives the damage" true
    (Path.is_valid (Damage.view damage) journey)

let test_single_area_is_single_leg () =
  let topo = ladder () in
  let g = Rtr_topo.Topology.graph topo in
  let damage =
    Damage.of_failed g ~nodes:[]
      ~links:[ Option.get (Graph.find_link g 1 2) ]
  in
  let r = Multi_area.recover topo damage ~initiator:1 ~trigger:2 ~dst:4 () in
  Alcotest.(check bool) "delivered" true r.Multi_area.delivered;
  Alcotest.(check int) "one leg" 1 (List.length r.Multi_area.legs)

let test_unreachable_stops () =
  let topo = ladder () in
  let g = Rtr_topo.Topology.graph topo in
  (* Cut node 4 off completely: links 3-4 and 9-4 and 8-9 etc. *)
  let damage = Damage.of_failed g ~nodes:[ 3; 9 ] ~links:[] in
  let r = Multi_area.recover topo damage ~initiator:2 ~trigger:3 ~dst:4 () in
  Alcotest.(check bool) "not delivered" false r.Multi_area.delivered;
  Alcotest.(check (option (list int)))
    "no journey" None
    (Option.map Path.nodes r.Multi_area.journey)

let test_budget_validation () =
  let topo = ladder () in
  let g = Rtr_topo.Topology.graph topo in
  let damage =
    Damage.of_failed g ~nodes:[]
      ~links:[ Option.get (Graph.find_link g 1 2) ]
  in
  Alcotest.check_raises "bad budget"
    (Invalid_argument "Multi_area.recover: bad budget") (fun () ->
      ignore
        (Multi_area.recover topo damage ~initiator:1 ~trigger:2 ~dst:4
           ~max_initiations:0 ()))

let multi_area_delivers_when_reachable =
  QCheck.Test.make
    ~name:"multi-area recovery delivers whenever the destination is reachable"
    ~count:80
    QCheck.(pair (int_range 8 30) (int_range 0 500))
    (fun (n, salt) ->
      let topo = Rtr_check.Gen.random_topology ~seed:(n * 19 + salt) ~n in
      let g = Rtr_topo.Topology.graph topo in
      (* Two independent discs. *)
      let d1 = Rtr_check.Gen.random_damage ~seed:salt topo in
      let d2 = Rtr_check.Gen.random_damage ~seed:(salt + 1) topo in
      let damage = Damage.merge d1 d2 in
      let view = Damage.view damage in
      List.for_all
        (fun (initiator, trigger) ->
          List.for_all
            (fun dst ->
              if dst = initiator || not (Damage.node_ok damage dst) then true
              else
                let reachable = Rtr_graph.Bfs.reachable view initiator dst in
                (* The carried failure set grows strictly with every
                   leg, so |E| initiations always suffice. *)
                let r =
                  Multi_area.recover topo damage ~initiator ~trigger ~dst
                    ~max_initiations:(Graph.n_links g + 1) ()
                in
                (* Completeness: reachable destinations are always
                   delivered eventually (each leg strictly grows the
                   carried failure set); unreachable ones never are. *)
                if reachable then r.Multi_area.delivered
                else not r.Multi_area.delivered)
            (List.init (Graph.n_nodes g) Fun.id))
        (match Rtr_check.Gen.detectors topo damage with [] -> [] | x :: _ -> [ x ]))

let suite =
  [
    Alcotest.test_case "two areas recovered" `Quick test_two_areas_recovered;
    Alcotest.test_case "single area single leg" `Quick test_single_area_is_single_leg;
    Alcotest.test_case "unreachable stops" `Quick test_unreachable_stops;
    Alcotest.test_case "budget validation" `Quick test_budget_validation;
    QCheck_alcotest.to_alcotest multi_area_delivers_when_reachable;
  ]
