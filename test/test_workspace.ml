module Graph = Rtr_graph.Graph
module View = Rtr_graph.View
module Spt = Rtr_graph.Spt
module Dijkstra = Rtr_graph.Dijkstra
module Metrics = Rtr_obs.Metrics

(* The arena counters are find-or-create by name, so grabbing them here
   yields the same handles the hot path bumps. *)
let c_ws_alloc = Metrics.counter "spt.ws_alloc"
let c_ws_reuse = Metrics.counter "spt.ws_reuse"

let check_same_tree name (oracle : Spt.t) (borrowed : Spt.t) =
  Alcotest.(check (array int)) (name ^ ": dist") oracle.Spt.dist borrowed.Spt.dist;
  Alcotest.(check (array int))
    (name ^ ": parent_node")
    oracle.Spt.parent_node borrowed.Spt.parent_node;
  Alcotest.(check (array int))
    (name ^ ": parent_link")
    oracle.Spt.parent_link borrowed.Spt.parent_link

(* Pseudo-random but deterministic damage predicates; roots are chosen
   to survive [node_ok]. *)
let node_ok v = v mod 5 <> 3
let link_ok id = id mod 7 <> 2

(* One arena reused across different graph sizes, roots, views, and
   directions must stay bit-identical to the closure-pair oracle.  Each
   comparison happens before the next borrow, per the borrowing
   discipline. *)
let test_reuse_matches_filtered () =
  let ws = Dijkstra.Workspace.create () in
  (* Revisit earlier sizes so the arena both grows and shrinks. *)
  let sizes = [ 8; 21; 8; 34; 21 ] in
  List.iteri
    (fun i n ->
      let g =
        Rtr_check.Gen.random_weighted_graph ~seed:((i * 131) + n) ~n
          ~extra:(n / 2) ~max_cost:9
      in
      let full = View.full g in
      let damaged = View.create g ~node_ok ~link_ok () in
      List.iter
        (fun root ->
          List.iter
            (fun direction ->
              let name view_name =
                Printf.sprintf "n=%d root=%d %s %s" n root view_name
                  (match direction with
                  | Spt.From_root -> "from"
                  | Spt.To_root -> "to")
              in
              let oracle = Dijkstra.spt_filtered g ~root ~direction () in
              let b = Dijkstra.spt ~workspace:ws full ~root ~direction () in
              check_same_tree (name "full") oracle b;
              let oracle =
                Dijkstra.spt_filtered g ~root ~direction ~node_ok ~link_ok ()
              in
              let b = Dijkstra.spt ~workspace:ws damaged ~root ~direction () in
              check_same_tree (name "damaged") oracle b)
            [ Spt.From_root; Spt.To_root ])
        [ 0; 1; n - 1 ])
    sizes

(* Same differential through the domain's own arena ([Workspace.get]),
   which the routing table and phase 2 use. *)
let test_domain_arena_matches_filtered () =
  let ws = Dijkstra.Workspace.get () in
  let g = Rtr_check.Gen.random_weighted_graph ~seed:77 ~n:26 ~extra:13 ~max_cost:7 in
  let damaged = View.create g ~node_ok ~link_ok () in
  List.iter
    (fun root ->
      let oracle = Dijkstra.spt_filtered g ~root ~node_ok ~link_ok () in
      let b = Dijkstra.spt ~workspace:ws damaged ~root () in
      check_same_tree (Printf.sprintf "root=%d" root) oracle b)
    [ 0; 5; 25 ]

let test_get_is_per_domain_singleton () =
  Alcotest.(check bool) "same arena" true
    (Dijkstra.Workspace.get () == Dijkstra.Workspace.get ())

(* First borrow against a given (n, m) allocates; later same-shape
   borrows reuse; a different-shape graph reallocates. *)
let test_alloc_reuse_counters () =
  let ws = Dijkstra.Workspace.create () in
  let g1 = Rtr_check.Gen.random_weighted_graph ~seed:5 ~n:12 ~extra:6 ~max_cost:5 in
  let g2 = Rtr_check.Gen.random_weighted_graph ~seed:6 ~n:19 ~extra:4 ~max_cost:5 in
  let v1 = View.full g1 and v2 = View.full g2 in
  let a0 = Metrics.Counter.value c_ws_alloc
  and r0 = Metrics.Counter.value c_ws_reuse in
  ignore (Dijkstra.spt ~workspace:ws v1 ~root:0 ());
  Alcotest.(check int) "fresh arena allocates" (a0 + 1)
    (Metrics.Counter.value c_ws_alloc);
  ignore (Dijkstra.spt ~workspace:ws v1 ~root:3 ());
  ignore (Dijkstra.spt ~workspace:ws v1 ~root:7 ~direction:Spt.To_root ());
  Alcotest.(check int) "same shape reuses" (r0 + 2)
    (Metrics.Counter.value c_ws_reuse);
  Alcotest.(check int) "no extra alloc on reuse" (a0 + 1)
    (Metrics.Counter.value c_ws_alloc);
  ignore (Dijkstra.spt ~workspace:ws v2 ~root:0 ());
  Alcotest.(check int) "shape change reallocates" (a0 + 2)
    (Metrics.Counter.value c_ws_alloc)

(* An owned run must not touch the arena counters — [?workspace] is
   strictly opt-in. *)
let test_owned_runs_bypass_arena () =
  let g = Rtr_check.Gen.random_weighted_graph ~seed:9 ~n:10 ~extra:5 ~max_cost:5 in
  let a0 = Metrics.Counter.value c_ws_alloc
  and r0 = Metrics.Counter.value c_ws_reuse in
  ignore (Dijkstra.spt (View.full g) ~root:0 ());
  Alcotest.(check int) "no alloc" a0 (Metrics.Counter.value c_ws_alloc);
  Alcotest.(check int) "no reuse" r0 (Metrics.Counter.value c_ws_reuse)

let workspace_matches_filtered_qcheck =
  QCheck.Test.make ~name:"workspace spt equals spt_filtered" ~count:60
    QCheck.(pair (int_range 4 40) small_nat)
    (fun (n, seed) ->
      let g =
        Rtr_check.Gen.random_weighted_graph ~seed ~n ~extra:(seed mod 9)
          ~max_cost:11
      in
      let ws = Dijkstra.Workspace.get () in
      let damaged = View.create g ~node_ok ~link_ok () in
      let root = seed mod n in
      let root = if node_ok root then root else (root + 1) mod n in
      let direction = if seed mod 2 = 0 then Spt.From_root else Spt.To_root in
      let oracle =
        Dijkstra.spt_filtered g ~root ~direction ~node_ok ~link_ok ()
      in
      let b = Dijkstra.spt ~workspace:ws damaged ~root ~direction () in
      oracle.Spt.dist = b.Spt.dist
      && oracle.Spt.parent_node = b.Spt.parent_node
      && oracle.Spt.parent_link = b.Spt.parent_link)

let suite =
  [
    Alcotest.test_case "reuse across sizes/roots/views/directions" `Quick
      test_reuse_matches_filtered;
    Alcotest.test_case "domain arena differential" `Quick
      test_domain_arena_matches_filtered;
    Alcotest.test_case "get is a per-domain singleton" `Quick
      test_get_is_per_domain_singleton;
    Alcotest.test_case "alloc/reuse counters" `Quick test_alloc_reuse_counters;
    Alcotest.test_case "owned runs bypass arena" `Quick
      test_owned_runs_bypass_arena;
    QCheck_alcotest.to_alcotest workspace_matches_filtered_qcheck;
  ]
