module Pool = Rtr_util.Pool

(* Adversarial durations: early tasks sleep longest, so with several
   workers the late tasks finish first — results must still come back
   by submission index. *)
let test_order_under_skew () =
  let n = 12 in
  let input = Array.init n (fun i -> i) in
  let f i =
    if i < 3 then Unix.sleepf (0.02 *. float_of_int (3 - i));
    i * i
  in
  let out = Pool.map ~jobs:4 f input in
  Array.iteri
    (fun i v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (i * i) v)
    out

let test_exception_propagates_and_pool_survives () =
  let input = Array.init 32 (fun i -> i) in
  Alcotest.check_raises "task failure re-raised" (Failure "boom") (fun () ->
      ignore (Pool.map ~jobs:4 (fun i -> if i = 13 then failwith "boom" else i) input));
  (* The failure joined every domain; a fresh run on the same inputs
     works — the pool never wedges. *)
  let out = Pool.map ~jobs:4 (fun i -> i + 1) input in
  Alcotest.(check int) "subsequent run ok" 32 out.(31)

(* jobs=1 degenerates to in-line execution: same domain, sequential
   order, no hook invocations. *)
let test_jobs1_inline () =
  let self = Domain.self () in
  let order = ref [] in
  let wrapped = ref false in
  let out =
    Pool.map ~jobs:1
      ~wrap_worker:(fun _ body ->
        wrapped := true;
        body ())
      ~on_stats:(fun _ -> wrapped := true)
      (fun i ->
        Alcotest.(check bool) "same domain" true (Domain.self () = self);
        order := i :: !order;
        i)
      (Array.init 8 (fun i -> i))
  in
  Alcotest.(check (list int)) "sequential order" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (List.rev !order);
  Alcotest.(check int) "results" 7 out.(7);
  Alcotest.(check bool) "hooks not invoked" false !wrapped

let test_stats_cover_all_tasks () =
  let n = 23 in
  let total = ref 0 in
  let workers = ref 0 in
  let out =
    Pool.map ~jobs:4
      ~on_stats:(fun stats ->
        workers := List.length stats;
        List.iter (fun (s : Pool.worker_stats) -> total := !total + s.Pool.tasks) stats)
      (fun i -> i)
      (Array.init n (fun i -> i))
  in
  Alcotest.(check int) "all tasks counted" n !total;
  Alcotest.(check int) "one stats record per worker" 4 !workers;
  Alcotest.(check int) "results intact" (n - 1) out.(n - 1)

let test_wrap_worker_runs_in_worker () =
  let self = Domain.self () in
  let saw_other = Atomic.make false in
  let _ =
    Pool.map ~jobs:2
      ~wrap_worker:(fun _ body ->
        if Domain.self () <> self then Atomic.set saw_other true;
        body ())
      (fun i -> i)
      (Array.init 8 (fun i -> i))
  in
  Alcotest.(check bool) "wrap ran on a spawned domain" true
    (Atomic.get saw_other)

(* --- the bounded streaming seam -------------------------------------- *)

(* Same adversarial skew as the map test: early tasks finish last, yet
   the consumer must see results in submission order. *)
let test_stream_order_under_skew () =
  let n = 12 in
  let produced = ref 0 in
  let producer () =
    if !produced >= n then None
    else begin
      let i = !produced in
      incr produced;
      Some i
    end
  in
  let f i =
    if i < 3 then Unix.sleepf (0.02 *. float_of_int (3 - i));
    i * i
  in
  let seen = ref [] in
  let consumer seq v =
    Alcotest.(check int) (Printf.sprintf "slot %d" seq) (seq * seq) v;
    seen := seq :: !seen
  in
  let total = Pool.stream ~jobs:4 f ~producer ~consumer () in
  Alcotest.(check int) "all consumed" n total;
  Alcotest.(check (list int)) "strict submission order"
    (List.init n (fun i -> i))
    (List.rev !seen)

(* Backpressure: with a slow head-of-line task and [capacity] in-flight
   slots, the coordinator must stop producing once the window is full —
   the producer never runs more than [capacity] ahead of the consumer. *)
let test_stream_backpressure () =
  let n = 40 and capacity = 3 in
  let produced = ref 0 and consumed = ref 0 and max_window = ref 0 in
  let producer () =
    max_window := max !max_window (!produced - !consumed);
    if !produced >= n then None
    else begin
      let i = !produced in
      incr produced;
      Some i
    end
  in
  let f i =
    if i = 0 then Unix.sleepf 0.05;
    i
  in
  let consumer _seq _v = incr consumed in
  let total = Pool.stream ~jobs:3 ~capacity f ~producer ~consumer () in
  Alcotest.(check int) "all consumed" n total;
  Alcotest.(check bool)
    (Printf.sprintf "window bounded by capacity (saw %d)" !max_window)
    true
    (!max_window <= capacity)

let test_stream_exception_propagates () =
  let produced = ref 0 in
  let producer () =
    if !produced >= 32 then None
    else begin
      let i = !produced in
      incr produced;
      Some i
    end
  in
  Alcotest.check_raises "task failure re-raised" (Failure "boom") (fun () ->
      ignore
        (Pool.stream ~jobs:4
           (fun i -> if i = 13 then failwith "boom" else i)
           ~producer
           ~consumer:(fun _ _ -> ())
           ()));
  (* The stream joined every domain; a fresh one on the same inputs
     works. *)
  let produced = ref 0 in
  let producer () =
    if !produced >= 8 then None
    else begin
      incr produced;
      Some !produced
    end
  in
  let total = Pool.stream ~jobs:4 (fun i -> i) ~producer ~consumer:(fun _ _ -> ()) () in
  Alcotest.(check int) "subsequent stream ok" 8 total

(* jobs=1 degenerates to the in-line produce/apply/consume loop: same
   domain, strictly alternating, no hook invocations — and an empty
   producer consumes nothing. *)
let test_stream_jobs1_inline () =
  let self = Domain.self () in
  let events = ref [] in
  let wrapped = ref false in
  let produced = ref 0 in
  let producer () =
    if !produced >= 3 then None
    else begin
      let i = !produced in
      incr produced;
      events := Printf.sprintf "P%d" i :: !events;
      Some i
    end
  in
  let total =
    Pool.stream ~jobs:1
      ~wrap_worker:(fun _ body ->
        wrapped := true;
        body ())
      ~on_stats:(fun _ -> wrapped := true)
      (fun i ->
        Alcotest.(check bool) "same domain" true (Domain.self () = self);
        events := Printf.sprintf "A%d" i :: !events;
        i)
      ~producer
      ~consumer:(fun seq _ -> events := Printf.sprintf "C%d" seq :: !events)
      ()
  in
  Alcotest.(check int) "consumed" 3 total;
  Alcotest.(check (list string)) "strict alternation"
    [ "P0"; "A0"; "C0"; "P1"; "A1"; "C1"; "P2"; "A2"; "C2" ]
    (List.rev !events);
  Alcotest.(check bool) "hooks not invoked" false !wrapped;
  let empty =
    Pool.stream ~jobs:1
      (fun i -> i)
      ~producer:(fun () -> None)
      ~consumer:(fun _ _ -> Alcotest.fail "consumed from empty stream")
      ()
  in
  Alcotest.(check int) "empty stream" 0 empty

let suite =
  [
    Alcotest.test_case "submission order under skewed durations" `Quick
      test_order_under_skew;
    Alcotest.test_case "stream order under skewed durations" `Quick
      test_stream_order_under_skew;
    Alcotest.test_case "stream backpressure bounds the window" `Quick
      test_stream_backpressure;
    Alcotest.test_case "stream exception propagates" `Quick
      test_stream_exception_propagates;
    Alcotest.test_case "stream jobs=1 runs inline" `Quick
      test_stream_jobs1_inline;
    Alcotest.test_case "exception propagates, pool survives" `Quick
      test_exception_propagates_and_pool_survives;
    Alcotest.test_case "jobs=1 runs inline" `Quick test_jobs1_inline;
    Alcotest.test_case "stats cover all tasks" `Quick
      test_stats_cover_all_tasks;
    Alcotest.test_case "wrap_worker runs in worker domain" `Quick
      test_wrap_worker_runs_in_worker;
  ]
