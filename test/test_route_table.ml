module Graph = Rtr_graph.Graph
module View = Rtr_graph.View
module Route_table = Rtr_routing.Route_table
module Path = Rtr_graph.Path

let ring n =
  Graph.build ~n ~edges:(List.init n (fun i -> (i, (i + 1) mod n)))

let test_next_hop_basics () =
  let g = ring 6 in
  let t = Route_table.compute (View.full g) in
  Alcotest.(check (option int)) "clockwise" (Some 1)
    (Route_table.next_hop t ~src:0 ~dst:2);
  Alcotest.(check (option int)) "counterclockwise" (Some 5)
    (Route_table.next_hop t ~src:0 ~dst:4);
  Alcotest.(check (option int)) "self" None (Route_table.next_hop t ~src:3 ~dst:3)

let test_deterministic_tie_break () =
  (* 0->3 via 1 or 2, both 2 hops: the smaller next hop wins. *)
  let g = Graph.build ~n:4 ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let t = Route_table.compute (View.full g) in
  Alcotest.(check (option int)) "smallest id" (Some 1)
    (Route_table.next_hop t ~src:0 ~dst:3)

let test_default_path_consistent () =
  let g = ring 8 in
  let t = Route_table.compute (View.full g) in
  let p = Option.get (Route_table.default_path t ~src:0 ~dst:3) in
  Alcotest.(check (list int)) "hop-by-hop path" [ 0; 1; 2; 3 ] (Path.nodes p);
  Alcotest.(check int) "dist matches" 3 (Route_table.dist t ~src:0 ~dst:3)

let test_asymmetric_costs () =
  (* 0->2: direct link costs 10 one way, 1 the other. *)
  let g =
    Graph.build_weighted ~n:3
      ~edges:[ (0, 1, 1, 1); (1, 2, 1, 1); (0, 2, 10, 1) ]
  in
  let t = Route_table.compute (View.full g) in
  Alcotest.(check (option int)) "expensive direction detours" (Some 1)
    (Route_table.next_hop t ~src:0 ~dst:2);
  Alcotest.(check (option int)) "cheap direction direct" (Some 0)
    (Route_table.next_hop t ~src:2 ~dst:0);
  Alcotest.(check int) "forward dist" 2 (Route_table.dist t ~src:0 ~dst:2);
  Alcotest.(check int) "reverse dist" 1 (Route_table.dist t ~src:2 ~dst:0)

let test_disconnected () =
  let g = Graph.build ~n:4 ~edges:[ (0, 1); (2, 3) ] in
  let t = Route_table.compute (View.full g) in
  Alcotest.(check (option int)) "no hop" None (Route_table.next_hop t ~src:0 ~dst:3);
  Alcotest.(check bool) "dist inf" true (Route_table.dist t ~src:0 ~dst:3 = max_int);
  Alcotest.(check (option (list int)))
    "no path" None
    (Option.map Path.nodes (Route_table.default_path t ~src:0 ~dst:3))

let paths_are_shortest =
  QCheck.Test.make ~name:"default paths are shortest paths" ~count:30
    QCheck.(pair (int_range 3 25) (int_range 0 40))
    (fun (n, extra) ->
      let g = Rtr_check.Gen.random_connected_graph ~seed:(n + (extra * 53)) ~n ~extra in
      let t = Route_table.compute (View.full g) in
      let ok = ref true in
      for s = 0 to n - 1 do
        for d = 0 to n - 1 do
          if s <> d then begin
            match Route_table.default_path t ~src:s ~dst:d with
            | None -> ok := false
            | Some p ->
                let best =
                  Option.get (Rtr_graph.Dijkstra.distance (View.full g) ~src:s ~dst:d)
                in
                if Path.cost g p <> best then ok := false
          end
        done
      done;
      !ok)

let next_link_matches_next_hop =
  QCheck.Test.make ~name:"next_link goes to next_hop" ~count:30
    QCheck.(int_range 3 20)
    (fun n ->
      let g = Rtr_check.Gen.random_connected_graph ~seed:(n * 3) ~n ~extra:n in
      let t = Route_table.compute (View.full g) in
      let ok = ref true in
      for s = 0 to n - 1 do
        for d = 0 to n - 1 do
          match (Route_table.next_hop t ~src:s ~dst:d,
                 Route_table.next_link t ~src:s ~dst:d) with
          | Some v, Some id -> if Graph.other_end g id s <> v then ok := false
          | None, None -> ()
          | _ -> ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "next hop basics" `Quick test_next_hop_basics;
    Alcotest.test_case "deterministic tie break" `Quick test_deterministic_tie_break;
    Alcotest.test_case "default path consistent" `Quick test_default_path_consistent;
    Alcotest.test_case "asymmetric costs" `Quick test_asymmetric_costs;
    Alcotest.test_case "disconnected" `Quick test_disconnected;
    QCheck_alcotest.to_alcotest paths_are_shortest;
    QCheck_alcotest.to_alcotest next_link_matches_next_hop;
  ]
