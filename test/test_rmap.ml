module Graph = Rtr_graph.Graph
module View = Rtr_graph.View
module Path = Rtr_graph.Path
module Damage = Rtr_failure.Damage
module PE = Rtr_topo.Paper_example
module Signature = Rtr_rmap.Signature
module Enum = Rtr_rmap.Enum
module Store = Rtr_rmap.Store
module Compile = Rtr_rmap.Compile
module Service = Rtr_rmap.Service
module Json = Rtr_obs.Json

let topo = PE.topology ()
let g = Rtr_topo.Topology.graph topo
let n_links = Graph.n_links g
let table = Rtr_routing.Route_table.compute (View.full g)

(* One singles-only compile shared by the store/service tests. *)
let compiled =
  lazy (Compile.run topo { Enum.default with Enum.explicit = [ [ 0; 1 ] ] })

let store () =
  match Store.of_string (Lazy.force compiled).Compile.artifact with
  | Ok s -> s
  | Error e -> Alcotest.failf "artifact rejected: %s" e

(* --- signatures ----------------------------------------------------- *)

let test_signature_canonical () =
  let s = Signature.of_links ~n_links [ 3; 1; 7 ] in
  Alcotest.(check string) "order irrelevant"
    (s :> string)
    (Signature.of_links ~n_links [ 7; 3; 1 ] :> string);
  Alcotest.(check string) "duplicates collapse"
    (s :> string)
    (Signature.of_links ~n_links [ 1; 1; 3; 7; 7 ] :> string);
  Alcotest.(check (list int)) "to_links ascending" [ 1; 3; 7 ]
    (Signature.to_links s);
  Alcotest.(check int) "card" 3 (Signature.card s);
  Alcotest.(check string) "empty is empty" ""
    (Signature.of_links ~n_links [] :> string);
  Alcotest.check_raises "out of range"
    (Invalid_argument
       (Printf.sprintf "Signature.of_links: link %d outside 0..%d" n_links
          (n_links - 1)))
    (fun () -> ignore (Signature.of_links ~n_links [ n_links ]))

let test_signature_of_damage () =
  (* A geographic failure and the explicit list of the same links must
     collide on one key — the map's whole premise. *)
  let damage =
    Damage.of_failed g ~nodes:[ PE.failed_router ] ~links:(PE.cut_links ())
  in
  let from_damage = Signature.of_damage g damage in
  let from_links =
    Signature.of_links ~n_links (Damage.failed_links damage)
  in
  Alcotest.(check string) "damage = explicit links"
    (from_damage :> string)
    (from_links :> string);
  (* The failed router is represented by its incident links. *)
  List.iter
    (fun l ->
      let u, v = Graph.endpoints g l in
      if u = PE.failed_router || v = PE.failed_router then
        Alcotest.(check bool)
          (Printf.sprintf "incident link %d present" l)
          true
          (List.mem l (Signature.to_links from_damage)))
    (List.init n_links Fun.id)

let test_signature_validate () =
  let s = Signature.of_links ~n_links [ 0; 5 ] in
  (match Signature.of_string ~n_links (s :> string) with
  | Ok s' -> Alcotest.(check bool) "round-trips" true (Signature.equal s s')
  | Error e -> Alcotest.failf "valid bytes rejected: %s" e);
  (match Signature.of_string ~n_links ((s :> string) ^ "\000") with
  | Ok _ -> Alcotest.fail "trailing zero byte accepted"
  | Error _ -> ());
  let high = String.make ((n_links / 8) + 1) '\255' in
  match Signature.of_string ~n_links high with
  | Ok _ -> Alcotest.fail "bits past n_links accepted"
  | Error _ -> ()

let qcheck_signature_permutation =
  QCheck.Test.make ~name:"signature is permutation- and duplicate-invariant"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 0 12) (int_bound (n_links - 1)))
    (fun links ->
      let s = Signature.of_links ~n_links links in
      let rev = Signature.of_links ~n_links (List.rev links) in
      let dup = Signature.of_links ~n_links (links @ links) in
      let sorted =
        Signature.of_links ~n_links (List.sort_uniq compare links)
      in
      Signature.equal s rev && Signature.equal s dup && Signature.equal s sorted
      && Signature.to_links s = List.sort_uniq compare links)

(* --- enumeration ---------------------------------------------------- *)

let test_enum_singles_and_dedup () =
  let scenarios, stats =
    Enum.enumerate topo
      { Enum.default with Enum.explicit = [ [ 0; 1 ]; [ 1; 0 ]; [ 2 ] ] }
  in
  (* [1;0] collapses onto [0;1]; [2] collapses onto its single. *)
  Alcotest.(check int) "kept" (n_links + 1) (List.length scenarios);
  Alcotest.(check int) "deduped" 2 stats.Enum.deduped;
  Alcotest.(check int) "dropped" 0 stats.Enum.dropped;
  (* Deterministic: same call, same list. *)
  let again, _ = Enum.enumerate topo
      { Enum.default with Enum.explicit = [ [ 0; 1 ]; [ 1; 0 ]; [ 2 ] ] }
  in
  Alcotest.(check bool) "deterministic" true
    (List.for_all2
       (fun (a : Enum.scenario) (b : Enum.scenario) ->
         Signature.equal a.Enum.signature b.Enum.signature)
       scenarios again)

let test_enum_combo_budget () =
  let scenarios, stats =
    Enum.enumerate topo
      { Enum.default with Enum.singles = false; Enum.combo_k = 2;
        Enum.combo_budget = 3 }
  in
  Alcotest.(check int) "kept at most the budget" 3 (List.length scenarios);
  Alcotest.(check bool) "drops are counted, not silent" true
    (stats.Enum.dropped > 0)

let test_enum_empty_disc () =
  let _, stats =
    Enum.enumerate topo
      { Enum.default with Enum.singles = false; Enum.grid_cols = 1;
        Enum.grid_rows = 1; Enum.radii = [ 10.0 ]; Enum.width = 1e9;
        Enum.height = 1e9 }
  in
  Alcotest.(check int) "far-away disc fails nothing" 1 stats.Enum.empty;
  Alcotest.(check int) "and is skipped" 0 stats.Enum.kept

(* --- store ---------------------------------------------------------- *)

let test_artifact_roundtrip () =
  let result = Lazy.force compiled in
  let store = store () in
  Alcotest.(check string) "topology name" (Rtr_topo.Topology.name topo)
    (Store.topo_name store);
  Alcotest.(check int) "n_nodes" (Graph.n_nodes g) (Store.n_nodes store);
  Alcotest.(check int) "n_links" n_links (Store.n_links store);
  Alcotest.(check int) "n_scenarios" result.Compile.n_scenarios
    (Store.n_scenarios store);
  Alcotest.(check int) "n_cases" result.Compile.n_cases (Store.n_cases store);
  (* Every slot's signature finds itself, and its cases re-evaluate to
     exactly the stored records. *)
  Store.iter_slots store (fun slot ->
      let signature = Store.signature store slot in
      Alcotest.(check int) "find_slot finds itself" slot
        (Store.find_slot store signature);
      let fresh =
        Compile.eval_links topo table (Signature.to_links signature)
      in
      let first, count = Store.case_range store slot in
      Alcotest.(check int) "case count" (Array.length fresh) count;
      Array.iteri
        (fun i c ->
          let stored = Store.to_case store (first + i) in
          if stored <> c then
            Alcotest.failf "slot %d case %d differs from re-evaluation" slot i)
        fresh)

let test_store_file_roundtrip () =
  let result = Lazy.force compiled in
  let path = Filename.temp_file "rmap" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc result.Compile.artifact;
      close_out oc;
      match Store.load path with
      | Error e -> Alcotest.failf "load rejected: %s" e
      | Ok store ->
          Alcotest.(check int) "same case count" result.Compile.n_cases
            (Store.n_cases store))

let expect_reject what bytes =
  match Store.of_string bytes with
  | Ok _ -> Alcotest.failf "%s accepted" what
  | Error _ -> ()

let test_store_rejects_corruption () =
  let artifact = (Lazy.force compiled).Compile.artifact in
  let flip pos byte =
    let b = Bytes.of_string artifact in
    Bytes.set b pos byte;
    Bytes.to_string b
  in
  expect_reject "bad magic" (flip 0 'X');
  expect_reject "truncated artifact"
    (String.sub artifact 0 (String.length artifact - 4));
  expect_reject "short header" (String.sub artifact 0 16);
  expect_reject "empty" "";
  (* Swap the first two index entries: the index is no longer sorted. *)
  let name_len =
    Int32.to_int (String.get_int32_le artifact 32)
  in
  let index_off = 40 + ((name_len + 3) / 4 * 4) in
  let b = Bytes.of_string artifact in
  let e0 = Bytes.sub b index_off 16 in
  Bytes.blit b (index_off + 16) b index_off 16;
  Bytes.blit e0 0 b (index_off + 16) 16;
  expect_reject "unsorted index" (Bytes.to_string b);
  (* An out-of-range node id in the path pool. *)
  let path_pool_len = Int32.to_int (String.get_int32_le artifact 28) in
  Alcotest.(check bool) "artifact stores some route" true (path_pool_len > 0);
  let b = Bytes.of_string artifact in
  Bytes.set_int32_le b (String.length artifact - 4) 0x7fffffffl;
  expect_reject "out-of-range path node" (Bytes.to_string b)

let test_store_case_index_probes () =
  let store = store () in
  Store.iter_slots store (fun slot ->
      let first, count = Store.case_range store slot in
      for i = first to first + count - 1 do
        let probe =
          Store.case_index store ~slot
            ~initiator:(Store.case_initiator store i)
            ~trigger:(Store.case_trigger store i)
            ~dst:(Store.case_dst store i)
        in
        Alcotest.(check int) "probe lands on the case" i probe
      done);
  (* A wrong trigger must miss even when (initiator, dst) is a case. *)
  let slot = 0 in
  let first, count = Store.case_range store slot in
  if count > 0 then begin
    let initiator = Store.case_initiator store first in
    let trigger = Store.case_trigger store first in
    let dst = Store.case_dst store first in
    let wrong = (trigger + 1) mod Store.n_nodes store in
    if wrong <> trigger then
      Alcotest.(check int) "wrong trigger misses" (-1)
        (Store.case_index store ~slot ~initiator ~trigger:wrong ~dst)
  end

let test_stretch () =
  Alcotest.(check (option (float 1e-9))) "3/2" (Some 1.5)
    (Store.stretch ~cost:3 ~true_cost:2);
  Alcotest.(check (option (float 1e-9))) "optimal" (Some 1.0)
    (Store.stretch ~cost:7 ~true_cost:7);
  Alcotest.(check (option (float 1e-9))) "no emitted cost" None
    (Store.stretch ~cost:(-1) ~true_cost:2);
  Alcotest.(check (option (float 1e-9))) "irrecoverable" None
    (Store.stretch ~cost:3 ~true_cost:(-1));
  Alcotest.(check (option (float 1e-9))) "zero denominator" None
    (Store.stretch ~cost:0 ~true_cost:0)

(* --- compiler ------------------------------------------------------- *)

let test_compile_deterministic_across_jobs () =
  let config = { Enum.default with Enum.explicit = [ [ 0; 1; 2 ] ] } in
  let a = Compile.run ~jobs:1 topo config in
  let b = Compile.run ~jobs:3 topo config in
  Alcotest.(check string) "byte-identical artifacts" a.Compile.artifact
    b.Compile.artifact;
  Alcotest.(check string) "same content hash"
    (Compile.fnv64_hex a.Compile.artifact)
    (Compile.fnv64_hex b.Compile.artifact)

let test_manifest_shape () =
  let m = (Lazy.force compiled).Compile.manifest in
  (match Json.parse (Json.to_string m) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "manifest is not valid JSON: %s" e);
  Alcotest.(check bool) "format tag" true
    (Json.member "format" m = Some (Json.String "rmap-manifest/1"));
  Alcotest.(check bool) "content hash present" true
    (match Json.member "artifact_fnv64" m with
    | Some (Json.String h) -> String.length h = 16
    | _ -> false)

(* --- service -------------------------------------------------------- *)

let test_service_topology_mismatch () =
  let other = Rtr_topo.Isp.load_by_name "AS209" in
  match Service.create ~topo:other (store ()) with
  | Ok _ -> Alcotest.fail "mismatched topology accepted"
  | Error _ -> ()

let service () =
  match Service.create ~topo (store ()) with
  | Ok s -> s
  | Error e -> Alcotest.failf "service rejected: %s" e

let check_reply_matches ~from_artifact (c : Store.case)
    (reply : Service.reply) =
  Alcotest.(check bool) "origin" from_artifact reply.Service.from_artifact;
  Alcotest.(check bool) "kind" true (reply.Service.kind = c.Store.kind);
  Alcotest.(check int) "cost" c.Store.cost reply.Service.cost;
  Alcotest.(check int) "true cost" c.Store.true_cost reply.Service.true_cost;
  Alcotest.(check (array int)) "path" c.Store.path reply.Service.path

let test_service_hit_path () =
  let service = service () in
  (* [0; 1] was compiled in: its first case must come straight from the
     artifact and match a from-scratch evaluation. *)
  let fresh = Compile.eval_links topo table [ 0; 1 ] in
  Alcotest.(check bool) "scenario has cases" true (Array.length fresh > 0);
  let c = fresh.(0) in
  match
    Service.query service ~links:[ 1; 0 ] ~initiator:c.Store.initiator
      ~trigger:c.Store.trigger ~dst:c.Store.dst
  with
  | Error e -> Alcotest.failf "hit query failed: %s" e
  | Ok reply -> check_reply_matches ~from_artifact:true c reply

let test_service_miss_falls_back () =
  let service = service () in
  (* A 3-link set was never compiled (singles plus the one explicit
     pair), so this query must take the reactive fallback — and still
     answer exactly what the compiler would have stored. *)
  let links = [ 0; 1; 2 ] in
  let fresh = Compile.eval_links topo table links in
  Alcotest.(check bool) "scenario has cases" true (Array.length fresh > 0);
  let c = fresh.(0) in
  match
    Service.query service ~links ~initiator:c.Store.initiator
      ~trigger:c.Store.trigger ~dst:c.Store.dst
  with
  | Error e -> Alcotest.failf "miss query failed: %s" e
  | Ok reply -> check_reply_matches ~from_artifact:false c reply

let test_service_rejects_bad_queries () =
  let service = service () in
  (match
     Service.query service ~links:[ 0 ] ~initiator:(-1) ~trigger:0 ~dst:1
   with
  | Ok _ -> Alcotest.fail "negative initiator accepted"
  | Error _ -> ());
  match
    Service.query service ~links:[ n_links + 5 ] ~initiator:0 ~trigger:1 ~dst:2
  with
  | Ok _ -> Alcotest.fail "out-of-range link accepted"
  | Error _ -> ()

let test_bench_lookups () =
  let service = service () in
  let a = Service.bench_lookups service ~n:2000 ~seed:11 in
  Alcotest.(check int) "all probes accounted" 2000
    (a.Service.hits + a.Service.misses);
  Alcotest.(check bool) "mostly hits" true (a.Service.hits > 1000);
  Alcotest.(check bool) "some misses" true (a.Service.misses > 0);
  let b = Service.bench_lookups service ~n:2000 ~seed:11 in
  Alcotest.(check int) "deterministic in the seed" a.Service.hits
    b.Service.hits

let suite =
  [
    Alcotest.test_case "signature canonical" `Quick test_signature_canonical;
    Alcotest.test_case "signature of damage" `Quick test_signature_of_damage;
    Alcotest.test_case "signature validation" `Quick test_signature_validate;
    QCheck_alcotest.to_alcotest qcheck_signature_permutation;
    Alcotest.test_case "enum singles + dedup" `Quick
      test_enum_singles_and_dedup;
    Alcotest.test_case "enum combo budget" `Quick test_enum_combo_budget;
    Alcotest.test_case "enum empty disc" `Quick test_enum_empty_disc;
    Alcotest.test_case "artifact round-trip" `Quick test_artifact_roundtrip;
    Alcotest.test_case "artifact file round-trip" `Quick
      test_store_file_roundtrip;
    Alcotest.test_case "corruption rejected" `Quick
      test_store_rejects_corruption;
    Alcotest.test_case "case-index probes" `Quick test_store_case_index_probes;
    Alcotest.test_case "stretch" `Quick test_stretch;
    Alcotest.test_case "jobs-invariant artifact" `Quick
      test_compile_deterministic_across_jobs;
    Alcotest.test_case "manifest shape" `Quick test_manifest_shape;
    Alcotest.test_case "service topology mismatch" `Quick
      test_service_topology_mismatch;
    Alcotest.test_case "service hit path" `Quick test_service_hit_path;
    Alcotest.test_case "service miss falls back" `Quick
      test_service_miss_falls_back;
    Alcotest.test_case "service rejects bad queries" `Quick
      test_service_rejects_bad_queries;
    Alcotest.test_case "bench lookups" `Quick test_bench_lookups;
  ]
