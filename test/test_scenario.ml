module Graph = Rtr_graph.Graph
module Damage = Rtr_failure.Damage
module View = Rtr_graph.View
module Scenario = Rtr_sim.Scenario
module PE = Rtr_topo.Paper_example

let paper_scenario () =
  let topo = PE.topology () in
  let g = Rtr_topo.Topology.graph topo in
  let table = Rtr_routing.Route_table.compute (View.full g) in
  (* An explicit area is awkward for the worked example, so test the
     classifier against a generated one and the worked damage against
     Scenario-independent expectations elsewhere. *)
  let rng = Rtr_util.Rng.make 17 in
  (topo, table, Scenario.generate topo table rng ())

let test_cases_are_valid_detections () =
  let topo, table, s = paper_scenario () in
  let g = Rtr_topo.Topology.graph topo in
  ignore table;
  List.iter
    (fun (c : Scenario.case) ->
      Alcotest.(check bool) "initiator live" true
        (Damage.node_ok s.Scenario.damage c.Scenario.initiator);
      let link =
        Option.get (Graph.find_link g c.Scenario.initiator c.Scenario.trigger)
      in
      Alcotest.(check bool) "trigger locally unreachable" true
        (Damage.neighbor_unreachable s.Scenario.damage c.Scenario.trigger link);
      (* The trigger is the default next hop towards the destination. *)
      Alcotest.(check (option int)) "trigger is the next hop"
        (Some c.Scenario.trigger)
        (Rtr_routing.Route_table.next_hop s.Scenario.table
           ~src:c.Scenario.initiator ~dst:c.Scenario.dst))
    s.Scenario.cases

let test_kinds_match_reachability () =
  let _, _, s = paper_scenario () in
  let node_ok = Damage.node_ok s.Scenario.damage in
  let view = Damage.view s.Scenario.damage in
  List.iter
    (fun (c : Scenario.case) ->
      let reachable =
        node_ok c.Scenario.dst
        && Rtr_graph.Bfs.reachable view c.Scenario.initiator c.Scenario.dst
      in
      match c.Scenario.kind with
      | Scenario.Recoverable ->
          Alcotest.(check bool) "recoverable reachable" true reachable;
          Alcotest.(check bool) "has yardstick" true
            (Option.is_some c.Scenario.shortest_after)
      | Scenario.Irrecoverable ->
          Alcotest.(check bool) "irrecoverable unreachable" false reachable;
          Alcotest.(check (option int)) "no yardstick" None
            c.Scenario.shortest_after)
    s.Scenario.cases

let test_cases_deduplicated () =
  let _, _, s = paper_scenario () in
  let keys =
    List.map
      (fun (c : Scenario.case) -> (c.Scenario.initiator, c.Scenario.dst))
      s.Scenario.cases
  in
  Alcotest.(check int) "unique (initiator, dst) pairs"
    (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_of_area_deterministic () =
  let topo = PE.topology () in
  let g = Rtr_topo.Topology.graph topo in
  let table = Rtr_routing.Route_table.compute (View.full g) in
  let area =
    Rtr_failure.Area.disc ~center:(Rtr_geom.Point.make 310.0 300.0)
      ~radius:50.0
  in
  let s1 = Scenario.of_area topo table area in
  let s2 = Scenario.of_area topo table area in
  Alcotest.(check int) "same cases" (List.length s1.Scenario.cases)
    (List.length s2.Scenario.cases)

let test_count_failed_paths () =
  let topo = PE.topology () in
  let g = Rtr_topo.Topology.graph topo in
  let table = Rtr_routing.Route_table.compute (View.full g) in
  (* No damage: nothing failed. *)
  let r0, i0 = Scenario.count_failed_paths topo table (Damage.none g) in
  Alcotest.(check (pair int int)) "no failures" (0, 0) (r0, i0);
  (* The worked-example damage: both kinds appear and every failed
     pair is counted once. *)
  let damage =
    Damage.of_failed g ~nodes:[ PE.failed_router ] ~links:(PE.cut_links ())
  in
  let r, i = Scenario.count_failed_paths topo table damage in
  Alcotest.(check bool) "some recoverable" true (r > 0);
  (* v10 is dead: all 17 * 2 ordered pairs with a live peer are
     irrecoverable paths... but only those whose default path existed
     and failed, with a live source: towards v10 that is every other
     live node. *)
  Alcotest.(check bool) "some irrecoverable" true (i >= 17)

let suite =
  [
    Alcotest.test_case "cases are valid detections" `Quick
      test_cases_are_valid_detections;
    Alcotest.test_case "kinds match reachability" `Quick
      test_kinds_match_reachability;
    Alcotest.test_case "cases deduplicated" `Quick test_cases_deduplicated;
    Alcotest.test_case "of_area deterministic" `Quick test_of_area_deterministic;
    Alcotest.test_case "count failed paths" `Quick test_count_failed_paths;
  ]
