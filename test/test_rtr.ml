module Graph = Rtr_graph.Graph
module Damage = Rtr_failure.Damage
module View = Rtr_graph.View
module Rtr = Rtr_core.Rtr
module Path = Rtr_graph.Path
module PE = Rtr_topo.Paper_example

let paper_session () =
  let topo = PE.topology () in
  let g = Rtr_topo.Topology.graph topo in
  let damage =
    Damage.of_failed g ~nodes:[ PE.failed_router ] ~links:(PE.cut_links ())
  in
  (topo, g, damage,
   Rtr.start topo damage ~initiator:PE.initiator ~trigger:PE.trigger ())

let test_paper_recovery () =
  let _, _, damage, session = paper_session () in
  match Rtr.recover session ~dst:PE.destination with
  | Rtr.Recovered path ->
      Alcotest.(check bool) "survives the true damage" true
        (Path.is_valid (Damage.view damage) path);
      Alcotest.(check int) "one calculation" 1 (Rtr.sp_calculations session)
  | _ -> Alcotest.fail "expected recovery"

let test_all_destinations_one_phase1 () =
  let _, g, _, session = paper_session () in
  let p1_before = Rtr.phase1 session in
  for dst = 0 to Graph.n_nodes g - 1 do
    if dst <> PE.initiator && dst <> PE.failed_router then
      ignore (Rtr.recover session ~dst)
  done;
  let p1_after = Rtr.phase1 session in
  Alcotest.(check bool) "phase 1 ran once for all destinations" true
    (p1_before == p1_after);
  Alcotest.(check int) "one calculation per destination" 16
    (Rtr.sp_calculations session)

(* Theorem 3: under any single link failure, every broken pair is
   recovered with a shortest path. *)
let theorem3_single_link_failure =
  QCheck.Test.make ~name:"Theorem 3: single link failure always recovers"
    ~count:60
    QCheck.(pair (int_range 5 25) (int_range 0 200))
    (fun (n, salt) ->
      let topo = Rtr_check.Gen.random_topology ~seed:(n * 11 + salt) ~n in
      let g = Rtr_topo.Topology.graph topo in
      let failed_link = salt mod Graph.n_links g in
      (* Only meaningful when the graph stays connected. *)
      let link_ok id = id <> failed_link in
      let still_connected =
        Rtr_graph.Components.count
          (Rtr_graph.Components.compute (View.create g ~link_ok ()))
        = 1
      in
      QCheck.assume still_connected;
      let damage = Damage.of_failed g ~nodes:[] ~links:[ failed_link ] in
      let u, v = Graph.endpoints g failed_link in
      List.for_all
        (fun (initiator, trigger) ->
          let session = Rtr.start topo damage ~initiator ~trigger () in
          List.for_all
            (fun dst ->
              if dst = initiator then true
              else
                match Rtr.recover session ~dst with
                | Rtr.Recovered path ->
                    let best =
                      Option.get
                        (Rtr_graph.Dijkstra.distance
                           (View.create g ~link_ok ())
                           ~src:initiator ~dst)
                    in
                    Path.cost g path = best
                | Rtr.Unreachable_in_view | Rtr.False_path _ -> false)
            (List.init (Graph.n_nodes g) Fun.id))
        [ (u, v); (v, u) ])

(* Theorem 2 on area failures: whenever RTR delivers, the path is a
   shortest path of the truly damaged graph. *)
let theorem2_recovered_is_optimal =
  QCheck.Test.make ~name:"Theorem 2: recovered implies shortest" ~count:120
    QCheck.(pair (int_range 6 35) (int_range 0 1000))
    (fun (n, salt) ->
      let topo = Rtr_check.Gen.random_topology ~seed:(n + (salt * 37)) ~n in
      let g = Rtr_topo.Topology.graph topo in
      let damage = Rtr_check.Gen.random_damage ~seed:(salt + 99) topo in
      let node_ok = Damage.node_ok damage and link_ok = Damage.link_ok damage in
      List.for_all
        (fun (initiator, trigger) ->
          let session = Rtr.start topo damage ~initiator ~trigger () in
          List.for_all
            (fun dst ->
              if dst = initiator then true
              else
                match Rtr.recover session ~dst with
                | Rtr.Recovered path -> (
                    match
                      Rtr_graph.Dijkstra.distance
                        (View.create g ~node_ok ~link_ok ())
                        ~src:initiator ~dst
                    with
                    | Some best -> Path.cost g path = best
                    | None -> false)
                | Rtr.Unreachable_in_view | Rtr.False_path _ -> true)
            (List.init (Graph.n_nodes g) Fun.id))
        (match Rtr_check.Gen.detectors topo damage with [] -> [] | x :: _ -> [ x ]))

(* RTR never reports "unreachable" for a destination that is in fact
   reachable: E1 never contains live links, so the view only shrinks by
   true failures. *)
let no_false_unreachable =
  QCheck.Test.make ~name:"no false unreachable verdicts" ~count:120
    QCheck.(pair (int_range 6 35) (int_range 0 1000))
    (fun (n, salt) ->
      let topo = Rtr_check.Gen.random_topology ~seed:(salt + (n * 53)) ~n in
      let g = Rtr_topo.Topology.graph topo in
      let damage = Rtr_check.Gen.random_damage ~seed:(salt * 7) topo in
      let node_ok = Damage.node_ok damage and link_ok = Damage.link_ok damage in
      List.for_all
        (fun (initiator, trigger) ->
          let session = Rtr.start topo damage ~initiator ~trigger () in
          List.for_all
            (fun dst ->
              if dst = initiator then true
              else
                match Rtr.recover session ~dst with
                | Rtr.Unreachable_in_view ->
                    not
                      (Rtr_graph.Bfs.reachable
                         (View.create g ~node_ok ~link_ok ())
                         initiator dst)
                | Rtr.Recovered _ | Rtr.False_path _ -> true)
            (List.init (Graph.n_nodes g) Fun.id))
        (match Rtr_check.Gen.detectors topo damage with [] -> [] | x :: _ -> [ x ]))

(* A mid-convergence episode invalidates a batched session's workspace
   lease: its cached answers keep serving, uncached queries raise, and
   [resume] yields a fresh batched session against the new damage. *)
let test_resume_expires_batched_lease () =
  let topo, g, damage, _ = paper_session () in
  let session =
    Rtr.start topo damage ~batched:true ~initiator:PE.initiator
      ~trigger:PE.trigger ()
  in
  let p2 = Rtr.phase2 session in
  Alcotest.(check bool) "session is batched" true (Rtr_core.Phase2.batched p2);
  Alcotest.(check bool) "lease starts live" false (Rtr_core.Phase2.expired p2);
  let cached_path =
    match Rtr.recover session ~dst:PE.destination with
    | Rtr.Recovered path -> path
    | _ -> Alcotest.fail "expected recovery before the episode"
  in
  let cached_dist = Rtr.recovery_distance session ~dst:PE.destination in
  (* The episode: one more link dies while the session is mid-flight.
     Pick an alive link that keeps the destination recoverable. *)
  let extra =
    let n_links = Graph.n_links g in
    let rec find id =
      if id >= n_links then Alcotest.fail "no episode link found"
      else
        let cand =
          Damage.merge damage (Damage.of_failed g ~nodes:[] ~links:[ id ])
        in
        if
          Damage.link_ok damage id
          && Rtr_graph.Bfs.reachable (Damage.view cand) PE.initiator
               PE.destination
        then cand
        else find (id + 1)
    in
    find 0
  in
  let resumed = Rtr.resume session extra in
  Alcotest.(check bool) "old lease expired" true (Rtr_core.Phase2.expired p2);
  (* Cached answers survive the expiry... *)
  (match Rtr.recover session ~dst:PE.destination with
  | Rtr.Recovered path ->
      Alcotest.(check bool) "cached path still served" true (path = cached_path)
  | _ -> Alcotest.fail "cached destination no longer served");
  Alcotest.(check bool) "cached distance still served" true
    (Rtr.recovery_distance session ~dst:PE.destination = cached_dist);
  (* ...but an uncached query on the expired session must raise, never
     silently answer from another session's tree. *)
  let uncached =
    let rec pick dst =
      if dst = PE.initiator || dst = PE.destination || dst = PE.failed_router
      then pick (dst + 1)
      else dst
    in
    pick 0
  in
  (match Rtr.recover session ~dst:uncached with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expired lease served an uncached query");
  (* The resumed session is batched again, holds a live lease, and
     answers against the episode's damage. *)
  Alcotest.(check bool) "resumed session batched" true
    (Rtr_core.Phase2.batched (Rtr.phase2 resumed));
  Alcotest.(check bool) "resumed lease live" false
    (Rtr_core.Phase2.expired (Rtr.phase2 resumed));
  Alcotest.(check bool) "same stale phase 1" true
    (Rtr.phase1 session == Rtr.phase1 resumed);
  match Rtr.recover resumed ~dst:PE.destination with
  | Rtr.Recovered path ->
      Alcotest.(check bool) "path valid under the episode damage" true
        (Path.is_valid (Damage.view extra) path)
  | Rtr.Unreachable_in_view | Rtr.False_path _ ->
      (* The stale collection may legitimately miss the new failure —
         but the session must answer, not raise. *)
      ()

let suite =
  [
    Alcotest.test_case "paper recovery" `Quick test_paper_recovery;
    Alcotest.test_case "one phase1, many destinations" `Quick
      test_all_destinations_one_phase1;
    Alcotest.test_case "resume expires the batched lease" `Quick
      test_resume_expires_batched_lease;
    QCheck_alcotest.to_alcotest theorem3_single_link_failure;
    QCheck_alcotest.to_alcotest theorem2_recovered_is_optimal;
    QCheck_alcotest.to_alcotest no_false_unreachable;
  ]
