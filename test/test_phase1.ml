open Rtr_geom
module Graph = Rtr_graph.Graph
module Damage = Rtr_failure.Damage
module Phase1 = Rtr_core.Phase1
module Embedding = Rtr_topo.Embedding

(* A planar 3x3 grid, 100 apart; the centre node (4) fails.  Node ids:
   0 1 2 / 3 4 5 / 6 7 8 (row-major, y grows upward by row). *)
let grid () =
  let pts =
    Array.init 9 (fun i ->
        Point.make (float_of_int (i mod 3) *. 100.0)
          (float_of_int (i / 3) *. 100.0))
  in
  let edges =
    [ (0, 1); (1, 2); (3, 4); (4, 5); (6, 7); (7, 8) ]
    @ [ (0, 3); (3, 6); (1, 4); (4, 7); (2, 5); (5, 8) ]
  in
  let g = Graph.build ~n:9 ~edges in
  Rtr_topo.Topology.create ~name:"grid" g (Embedding.of_points pts)

let test_planar_ring_walk () =
  let topo = grid () in
  let g = Rtr_topo.Topology.graph topo in
  let d = Damage.of_failed g ~nodes:[ 4 ] ~links:[] in
  let p1 = Phase1.run topo d ~initiator:1 ~trigger:4 () in
  Alcotest.(check bool) "completed" true (p1.Phase1.status = Phase1.Completed);
  (* The walk circles the dead centre and visits all four of its live
     neighbours, so it collects the three failed links not incident to
     the initiator. *)
  let expected =
    List.sort compare
      [
        Option.get (Graph.find_link g 3 4);
        Option.get (Graph.find_link g 4 7);
        Option.get (Graph.find_link g 4 5);
      ]
  in
  Alcotest.(check (list int)) "collects the centre's other links" expected
    (List.sort compare p1.Phase1.failed_links);
  Alcotest.(check bool) "no cross links on a planar grid" true
    (p1.Phase1.cross_links = []);
  (* Closed walk: starts and ends at the initiator. *)
  Alcotest.(check int) "starts at initiator" 1 (List.hd p1.Phase1.walk);
  Alcotest.(check int) "ends at initiator" 1
    (List.nth p1.Phase1.walk (List.length p1.Phase1.walk - 1))

let test_no_live_neighbor () =
  let topo = grid () in
  let g = Rtr_topo.Topology.graph topo in
  (* Node 0's neighbours 1 and 3 both die. *)
  let d = Damage.of_failed g ~nodes:[ 1; 3 ] ~links:[] in
  let p1 = Phase1.run topo d ~initiator:0 ~trigger:1 () in
  Alcotest.(check bool) "no live neighbour" true
    (p1.Phase1.status = Phase1.No_live_neighbor);
  Alcotest.(check (list int)) "trivial walk" [ 0 ] p1.Phase1.walk;
  Alcotest.(check int) "no hops" 0 p1.Phase1.hops

let test_trigger_validation () =
  let topo = grid () in
  let g = Rtr_topo.Topology.graph topo in
  let d = Damage.of_failed g ~nodes:[ 4 ] ~links:[] in
  Alcotest.check_raises "reachable trigger"
    (Invalid_argument "Phase1.run: trigger is reachable") (fun () ->
      ignore (Phase1.run topo d ~initiator:0 ~trigger:1 ()));
  Alcotest.check_raises "non neighbour"
    (Invalid_argument "Phase1.run: trigger not a neighbour") (fun () ->
      ignore (Phase1.run topo d ~initiator:0 ~trigger:4 ()))

let test_initiator_links_not_recorded () =
  let topo = grid () in
  let g = Rtr_topo.Topology.graph topo in
  let d = Damage.of_failed g ~nodes:[ 4 ] ~links:[] in
  let p1 = Phase1.run topo d ~initiator:1 ~trigger:4 () in
  let l14 = Option.get (Graph.find_link g 1 4) in
  Alcotest.(check bool) "own link omitted" false
    (List.mem l14 p1.Phase1.failed_links)

let test_tree_branch_traversed_twice () =
  (* A line 0-1-2 with a failed stub at 1: the walk must go out and
     back, crossing e0,1 twice. *)
  let pts =
    [|
      Point.make 0.0 0.0;
      Point.make 100.0 0.0;
      Point.make 200.0 0.0;
      Point.make 100.0 100.0;
    |]
  in
  let g = Graph.build ~n:4 ~edges:[ (0, 1); (1, 2); (1, 3) ] in
  let topo = Rtr_topo.Topology.create ~name:"stub" g (Embedding.of_points pts) in
  let d = Damage.of_failed g ~nodes:[ 3 ] ~links:[] in
  let p1 = Phase1.run topo d ~initiator:1 ~trigger:3 () in
  Alcotest.(check bool) "completed" true (p1.Phase1.status = Phase1.Completed);
  (* All of v1's neighbours get visited; branch links appear twice. *)
  let visits v = List.length (List.filter (( = ) v) p1.Phase1.walk) in
  Alcotest.(check bool) "v0 and v2 both visited" true
    (visits 0 >= 1 && visits 2 >= 1)

let test_header_bytes_monotone () =
  let topo = grid () in
  let g = Rtr_topo.Topology.graph topo in
  let d = Damage.of_failed g ~nodes:[ 4 ] ~links:[] in
  let p1 = Phase1.run topo d ~initiator:1 ~trigger:4 () in
  let bytes = List.map (fun s -> s.Phase1.header_bytes) p1.Phase1.steps in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "append-only header" true (monotone bytes);
  Alcotest.(check int) "final size matches fields"
    (Phase1.header_bytes_final p1)
    (List.nth bytes (List.length bytes - 1))

let test_duration_model () =
  let topo = grid () in
  let g = Rtr_topo.Topology.graph topo in
  let d = Damage.of_failed g ~nodes:[ 4 ] ~links:[] in
  let p1 = Phase1.run topo d ~initiator:1 ~trigger:4 () in
  Alcotest.(check (float 1e-9)) "1.8 ms per hop"
    (float_of_int p1.Phase1.hops *. 1.8e-3)
    (Phase1.duration_s p1)

(* Theorem 1 on random instances: the walk always terminates by
   closing the cycle (never the hop cap, never stuck mid-walk). *)
let theorem1_no_permanent_loops =
  QCheck.Test.make ~name:"Theorem 1: phase 1 terminates cleanly" ~count:150
    QCheck.(pair (int_range 6 40) (int_range 0 1000))
    (fun (n, salt) ->
      let topo = Rtr_check.Gen.random_topology ~seed:(n + (salt * 1009)) ~n in
      let damage = Rtr_check.Gen.random_damage ~seed:salt topo in
      List.for_all
        (fun (initiator, trigger) ->
          let p1 = Phase1.run topo damage ~initiator ~trigger () in
          match p1.Phase1.status with
          | Phase1.Completed | Phase1.No_live_neighbor -> true
          | Phase1.Hop_limit | Phase1.Stuck _ -> false)
        (Rtr_check.Gen.detectors topo damage))

(* Soundness of collection (premise of Theorem 2): E1 is a subset of
   the truly failed links, and never contains initiator-incident
   links. *)
let collection_sound =
  QCheck.Test.make ~name:"E1 subset of E2, initiator links omitted" ~count:150
    QCheck.(pair (int_range 6 40) (int_range 0 1000))
    (fun (n, salt) ->
      let topo = Rtr_check.Gen.random_topology ~seed:(n + (salt * 2003)) ~n in
      let g = Rtr_topo.Topology.graph topo in
      let damage = Rtr_check.Gen.random_damage ~seed:(salt + 5) topo in
      List.for_all
        (fun (initiator, trigger) ->
          let p1 = Phase1.run topo damage ~initiator ~trigger () in
          List.for_all
            (fun id ->
              Damage.link_failed damage id
              &&
              let u, v = Graph.endpoints g id in
              u <> initiator && v <> initiator)
            p1.Phase1.failed_links)
        (Rtr_check.Gen.detectors topo damage))

(* The walk stays on live ground: every visited node is live and every
   traversed link usable. *)
let walk_is_live =
  QCheck.Test.make ~name:"walk only visits live nodes over live links"
    ~count:100
    QCheck.(pair (int_range 6 30) (int_range 0 500))
    (fun (n, salt) ->
      let topo = Rtr_check.Gen.random_topology ~seed:(n * 3 + salt) ~n in
      let damage = Rtr_check.Gen.random_damage ~seed:(salt * 13) topo in
      List.for_all
        (fun (initiator, trigger) ->
          let p1 = Phase1.run topo damage ~initiator ~trigger () in
          List.for_all (Damage.node_ok damage) p1.Phase1.walk
          && List.for_all
               (fun s -> Damage.link_ok damage s.Phase1.via)
               p1.Phase1.steps)
        (Rtr_check.Gen.detectors topo damage))

(* The TTL cuts the walk the moment one more hop would exceed it —
   [hops] never exceeds the limit — while a walk that closes its cycle
   with the TTL exactly spent still completes (closing consumes no
   hop).  Probed via the [?hop_limit] override around the natural
   length of the grid's ring walk. *)
let test_hop_limit_boundary () =
  let topo = grid () in
  let g = Rtr_topo.Topology.graph topo in
  let d = Damage.of_failed g ~nodes:[ 4 ] ~links:[] in
  let free = Phase1.run topo d ~initiator:1 ~trigger:4 () in
  Alcotest.(check bool) "natural walk completes" true
    (free.Phase1.status = Phase1.Completed);
  let h = free.Phase1.hops in
  Alcotest.(check bool) "walk is several hops long" true (h > 2);
  Alcotest.(check bool) "within the default TTL" true
    (h <= (4 * Graph.n_links g) + 4);
  let exact = Phase1.run topo d ~hop_limit:h ~initiator:1 ~trigger:4 () in
  Alcotest.(check bool) "completes with the TTL exactly spent" true
    (exact.Phase1.status = Phase1.Completed);
  Alcotest.(check int) "same hops at the boundary" h exact.Phase1.hops;
  let cut = Phase1.run topo d ~hop_limit:(h - 1) ~initiator:1 ~trigger:4 () in
  Alcotest.(check bool) "one hop short hits the limit" true
    (cut.Phase1.status = Phase1.Hop_limit);
  Alcotest.(check int) "hops never exceed the limit" (h - 1) cut.Phase1.hops

let suite =
  [
    Alcotest.test_case "planar ring walk" `Quick test_planar_ring_walk;
    Alcotest.test_case "hop limit boundary" `Quick test_hop_limit_boundary;
    Alcotest.test_case "no live neighbour" `Quick test_no_live_neighbor;
    Alcotest.test_case "trigger validation" `Quick test_trigger_validation;
    Alcotest.test_case "initiator links not recorded" `Quick
      test_initiator_links_not_recorded;
    Alcotest.test_case "tree branch twice" `Quick test_tree_branch_traversed_twice;
    Alcotest.test_case "header bytes monotone" `Quick test_header_bytes_monotone;
    Alcotest.test_case "duration model" `Quick test_duration_model;
    QCheck_alcotest.to_alcotest theorem1_no_permanent_loops;
    QCheck_alcotest.to_alcotest collection_sound;
    QCheck_alcotest.to_alcotest walk_is_live;
  ]
