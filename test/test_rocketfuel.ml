module Rocketfuel = Rtr_topo.Rocketfuel
module Topology = Rtr_topo.Topology
module Graph = Rtr_graph.Graph

let weights_sample =
  {|# inferred weights
Seattle,WA Portland,OR 2.5
Portland,OR Seattle,WA 2.5
Seattle,WA Denver,CO 10
Denver,CO Seattle,WA 12
Denver,CO Portland,OR 8.4
Portland,OR Denver,CO 8.4
|}

let test_weights_basic () =
  let t = Rocketfuel.of_weights ~seed:1 weights_sample in
  let g = Topology.graph t in
  Alcotest.(check int) "three cities" 3 (Graph.n_nodes g);
  Alcotest.(check int) "three links" 3 (Graph.n_links g);
  (* Seattle=0, Portland=1, Denver=2 in appearance order. *)
  let l = Option.get (Graph.find_link g 0 2) in
  Alcotest.(check int) "seattle->denver" 10 (Graph.cost g l ~src:0);
  Alcotest.(check int) "denver->seattle asymmetric" 12 (Graph.cost g l ~src:2)

let test_weights_missing_reverse () =
  let t =
    Rocketfuel.of_weights ~seed:1 "a,x b,y 3\nb,y c,z 4\nc,z b,y 4\na,x c,z 9\nc,z a,x 9\n"
  in
  let g = Topology.graph t in
  let l = Option.get (Graph.find_link g 0 1) in
  Alcotest.(check int) "reverse inherits forward" 3 (Graph.cost g l ~src:1)

let test_weights_spaced_names () =
  let t =
    Rocketfuel.of_weights ~seed:1
      "New York, NY Washington, DC 5\nWashington, DC New York, NY 5\nNew York, NY Boston, MA 3\nBoston, MA New York, NY 3\nBoston, MA Washington, DC 7\nWashington, DC Boston, MA 7\n"
  in
  Alcotest.(check int) "three metros" 3 (Graph.n_nodes (Topology.graph t))

let test_weights_validation () =
  let expect_failure input =
    match Rocketfuel.of_weights ~seed:1 input with
    | exception Failure _ -> ()
    | _ -> Alcotest.fail "expected failure"
  in
  expect_failure "a,x b,y notanumber\n";
  expect_failure "";
  (* disconnected *)
  expect_failure "a,x b,y 1\nb,y a,x 1\nc,z d,w 1\nd,w c,z 1\n"

let test_weights_deterministic_embedding () =
  let t1 = Rocketfuel.of_weights ~seed:9 weights_sample in
  let t2 = Rocketfuel.of_weights ~seed:9 weights_sample in
  let p e i = Rtr_topo.Embedding.position (Topology.embedding e) i in
  Alcotest.(check bool) "same seed, same placement" true
    (Rtr_geom.Point.equal (p t1 0) (p t2 0));
  let t3 = Rocketfuel.of_weights ~seed:10 weights_sample in
  Alcotest.(check bool) "different seed differs" false
    (Rtr_geom.Point.equal (p t1 0) (p t3 0))

let cch_sample =
  {|0 @Seattle,+WA bb (3) &1 -> <1> <2> {-99} =r0.sea rn
1 @Portland,+OR bb (2) -> <0> <2> =r1.pdx rn
2 @Denver,+CO bb (2) -> <0> <1> =r2.den rn
-99 @External
|}

let test_cch_basic () =
  let t = Rocketfuel.of_cch ~seed:1 cch_sample in
  let g = Topology.graph t in
  Alcotest.(check int) "three routers" 3 (Graph.n_nodes g);
  Alcotest.(check int) "triangle" 3 (Graph.n_links g);
  Alcotest.(check bool) "unit costs" true
    (Graph.fold_links g ~init:true ~f:(fun acc id u _ ->
         acc && Graph.cost g id ~src:u = 1))

let test_cch_end_to_end_recovery () =
  (* A parsed map must drive the whole stack. *)
  let t = Rocketfuel.of_cch ~seed:5 cch_sample in
  let g = Topology.graph t in
  let l01 = Option.get (Graph.find_link g 0 1) in
  let damage = Rtr_failure.Damage.of_failed g ~nodes:[] ~links:[ l01 ] in
  let session = Rtr_core.Rtr.start t damage ~initiator:0 ~trigger:1 () in
  match Rtr_core.Rtr.recover session ~dst:1 with
  | Rtr_core.Rtr.Recovered path ->
      Alcotest.(check int) "detour via denver" 2 (Rtr_graph.Path.hops path)
  | _ -> Alcotest.fail "single link failure must recover (Theorem 3)"

let test_file_loaders () =
  let path = Filename.temp_file "rtr_rf" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc weights_sample;
      close_out oc;
      let t = Rocketfuel.load_weights ~seed:1 path in
      Alcotest.(check int) "loaded" 3 (Graph.n_nodes (Topology.graph t)))

let suite =
  [
    Alcotest.test_case "weights basic" `Quick test_weights_basic;
    Alcotest.test_case "weights missing reverse" `Quick test_weights_missing_reverse;
    Alcotest.test_case "weights spaced names" `Quick test_weights_spaced_names;
    Alcotest.test_case "weights validation" `Quick test_weights_validation;
    Alcotest.test_case "weights deterministic embedding" `Quick
      test_weights_deterministic_embedding;
    Alcotest.test_case "cch basic" `Quick test_cch_basic;
    Alcotest.test_case "cch end-to-end recovery" `Quick test_cch_end_to_end_recovery;
    Alcotest.test_case "file loaders" `Quick test_file_loaders;
  ]
