(* Failure injection and edge cases cutting across the whole stack:
   polygonal failure areas, weighted/asymmetric costs, border areas,
   degenerate graphs. *)

open Rtr_geom
module Graph = Rtr_graph.Graph
module Damage = Rtr_failure.Damage
module View = Rtr_graph.View
module Rtr = Rtr_core.Rtr
module Path = Rtr_graph.Path

(* RTR's guarantees are shape-independent: rerun the Theorem 2 property
   with polygonal areas. *)
let theorem2_polygon_areas =
  QCheck.Test.make ~name:"Theorem 2 holds for polygonal failure areas"
    ~count:80
    QCheck.(triple (int_range 8 30) (int_range 3 9) (int_range 0 500))
    (fun (n, sides, salt) ->
      let topo = Rtr_check.Gen.random_topology ~seed:(n * 7 + salt) ~n in
      let g = Rtr_topo.Topology.graph topo in
      let rng = Rtr_util.Rng.make (salt + 1) in
      let center =
        Point.make (Rtr_util.Rng.float rng 2000.0) (Rtr_util.Rng.float rng 2000.0)
      in
      let radius = Rtr_util.Rng.float_range rng 100.0 300.0 in
      let area = Rtr_failure.Area.poly (Polygon.regular ~center ~radius ~sides) in
      let damage = Damage.apply topo area in
      let node_ok = Damage.node_ok damage and link_ok = Damage.link_ok damage in
      List.for_all
        (fun (initiator, trigger) ->
          let session = Rtr.start topo damage ~initiator ~trigger () in
          List.for_all
            (fun dst ->
              if dst = initiator then true
              else
                match Rtr.recover session ~dst with
                | Rtr.Recovered path -> (
                    match
                      Rtr_graph.Dijkstra.distance
                        (View.create g ~node_ok ~link_ok ())
                        ~src:initiator ~dst
                    with
                    | Some best -> Path.cost g path = best
                    | None -> false)
                | Rtr.Unreachable_in_view ->
                    not
                      (Rtr_graph.Bfs.reachable
                         (View.create g ~node_ok ~link_ok ())
                         initiator dst)
                | Rtr.False_path _ -> true)
            (List.init (Graph.n_nodes g) Fun.id))
        (match Rtr_check.Gen.detectors topo damage with [] -> [] | x :: _ -> [ x ]))

(* Area centred outside the plane's corner: only clips the border. *)
let border_area_harmless_when_missing =
  QCheck.Test.make ~name:"area clipping nothing leaves routing intact"
    ~count:50
    QCheck.(int_range 5 25)
    (fun n ->
      let topo = Rtr_check.Gen.random_topology ~seed:(n * 13) ~n in
      (* Far outside the 2000x2000 plane. *)
      let area =
        Rtr_failure.Area.disc ~center:(Point.make 10_000.0 10_000.0)
          ~radius:100.0
      in
      let damage = Damage.apply topo area in
      Damage.n_failed_nodes damage = 0 && Damage.n_failed_links damage = 0)

(* Weighted, asymmetric link costs through the full recovery stack:
   the recovery path must be optimal with respect to the cost metric,
   not hop count. *)
let theorem2_weighted_costs =
  QCheck.Test.make ~name:"Theorem 2 with asymmetric weighted costs" ~count:60
    QCheck.(pair (int_range 6 20) (int_range 0 300))
    (fun (n, salt) ->
      let g =
        Rtr_check.Gen.random_weighted_graph ~seed:(n + salt) ~n ~extra:n ~max_cost:9
      in
      let rng = Rtr_util.Rng.make (salt + 2) in
      let emb = Rtr_topo.Embedding.random rng ~n () in
      let topo = Rtr_topo.Topology.create ~name:"weighted" g emb in
      let damage = Rtr_check.Gen.random_damage ~seed:(salt * 11) topo in
      let node_ok = Damage.node_ok damage and link_ok = Damage.link_ok damage in
      List.for_all
        (fun (initiator, trigger) ->
          let session = Rtr.start topo damage ~initiator ~trigger () in
          List.for_all
            (fun dst ->
              if dst = initiator then true
              else
                match Rtr.recover session ~dst with
                | Rtr.Recovered path -> (
                    match
                      Rtr_graph.Dijkstra.distance
                        (View.create g ~node_ok ~link_ok ())
                        ~src:initiator ~dst
                    with
                    | Some best -> Path.cost g path = best
                    | None -> false)
                | Rtr.Unreachable_in_view | Rtr.False_path _ -> true)
            (List.init (Graph.n_nodes g) Fun.id))
        (match Rtr_check.Gen.detectors topo damage with [] -> [] | x :: _ -> [ x ]))

(* The whole network inside the area: every detector sees only dead
   neighbours or is dead itself. *)
let test_total_destruction () =
  let topo = Rtr_check.Gen.random_topology ~seed:5 ~n:12 in
  let area =
    Rtr_failure.Area.disc ~center:(Point.make 1000.0 1000.0) ~radius:5000.0
  in
  let damage = Damage.apply topo area in
  Alcotest.(check int) "everyone dead" 12 (Damage.n_failed_nodes damage);
  Alcotest.(check (list (pair int int))) "no detectors" []
    (Rtr_check.Gen.detectors topo damage)

(* Two-node graph: the smallest possible recovery problem. *)
let test_two_node_graph () =
  let g = Graph.build ~n:2 ~edges:[ (0, 1) ] in
  let emb =
    Rtr_topo.Embedding.of_points [| Point.make 0.0 0.0; Point.make 10.0 0.0 |]
  in
  let topo = Rtr_topo.Topology.create ~name:"pair" g emb in
  let damage = Damage.of_failed g ~nodes:[] ~links:[ 0 ] in
  let session = Rtr.start topo damage ~initiator:0 ~trigger:1 () in
  (match Rtr.recover session ~dst:1 with
  | Rtr.Unreachable_in_view -> ()
  | _ -> Alcotest.fail "no alternative path exists");
  let p1 = Rtr.phase1 session in
  Alcotest.(check bool) "degenerate walk" true
    (p1.Rtr_core.Phase1.status = Rtr_core.Phase1.No_live_neighbor)

(* A clique: maximal redundancy; any single node failure must be fully
   recoverable from every initiator. *)
let test_clique_single_node_failure () =
  let n = 8 in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  let g = Graph.build ~n ~edges:!edges in
  let rng = Rtr_util.Rng.make 77 in
  let emb = Rtr_topo.Embedding.random rng ~n () in
  let topo = Rtr_topo.Topology.create ~name:"clique" g emb in
  let damage = Damage.of_failed g ~nodes:[ 3 ] ~links:[] in
  for initiator = 0 to n - 1 do
    if initiator <> 3 then begin
      let session = Rtr.start topo damage ~initiator ~trigger:3 () in
      for dst = 0 to n - 1 do
        if dst <> initiator && dst <> 3 then
          match Rtr.recover session ~dst with
          | Rtr.Recovered path ->
              Alcotest.(check int)
                (Printf.sprintf "direct hop %d->%d" initiator dst)
                1 (Path.hops path)
          | _ -> Alcotest.fail "clique recovery failed"
      done
    end
  done

let suite =
  [
    QCheck_alcotest.to_alcotest theorem2_polygon_areas;
    QCheck_alcotest.to_alcotest border_area_harmless_when_missing;
    QCheck_alcotest.to_alcotest theorem2_weighted_costs;
    Alcotest.test_case "total destruction" `Quick test_total_destruction;
    Alcotest.test_case "two-node graph" `Quick test_two_node_graph;
    Alcotest.test_case "clique single failure" `Quick test_clique_single_node_failure;
  ]
