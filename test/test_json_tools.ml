(* The json_canon/json_check logic (Rtr_tools.Json_tools): strip
   semantics, canonicalisation round-trips, argument parsing, and
   artifact validation. *)

module T = Rtr_tools.Json_tools
module Json = Rtr_obs.Json

let parse s = Result.get_ok (Json.parse s)

let json_t =
  Alcotest.testable
    (fun fmt j -> Fmt.string fmt (Json.to_string j))
    ( = )

let test_strip_semantics () =
  let doc =
    parse
      {|{"manifest":{"argv":["x"],"wall_s":1.5},"metrics":{"pool":{"runs":3},"phase1":{"runs":7}},"pool":[{"pool":1}]}|}
  in
  Alcotest.check json_t "drops matching dotted prefixes"
    (parse {|{"metrics":{"phase1":{"runs":7}},"pool":[{"pool":1}]}|})
    (T.strip ~prefixes:[ "manifest"; "metrics.pool" ] doc);
  (* Array elements keep their parent's path: the "pool" member inside
     the array is at path "pool.pool", not "pool". *)
  Alcotest.check json_t "stripping is by member path, not position"
    (parse {|{"a":[{"c":2}]}|})
    (T.strip ~prefixes:[ "a.b" ] (parse {|{"a":[{"b":1,"c":2}]}|}));
  Alcotest.check json_t "no prefixes, no change" doc
    (T.strip ~prefixes:[] doc)

let test_canon_round_trip () =
  let file = Filename.temp_file "canon" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc "  {\"b\": 1, \"a\": [1.5, true, null]}  \n";
      close_out oc;
      (match T.canon ~prefixes:[] file with
      | Ok s ->
          Alcotest.(check string) "compact rendering"
            {|{"b":1,"a":[1.5,true,null]}|} s
      | Error msg -> Alcotest.fail msg);
      match T.canon ~prefixes:[ "a" ] file with
      | Ok s -> Alcotest.(check string) "stripped rendering" {|{"b":1}|} s
      | Error msg -> Alcotest.fail msg)

let test_canon_errors () =
  (match T.canon ~prefixes:[] "/nonexistent/nope.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted");
  let file = Filename.temp_file "canon" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc "{not json";
      close_out oc;
      match T.canon ~prefixes:[] file with
      | Error msg ->
          Alcotest.(check bool) "names the file" true
            (String.length msg > 0
            && String.starts_with ~prefix:file msg)
      | Ok _ -> Alcotest.fail "malformed JSON accepted")

let test_parse_canon_args () =
  (match T.parse_canon_args [ "--strip"; "a.b"; "--strip"; "c"; "f.json" ] with
  | Ok (prefixes, file) ->
      Alcotest.(check (list string)) "prefixes in order" [ "a.b"; "c" ] prefixes;
      Alcotest.(check string) "file" "f.json" file
  | Error _ -> Alcotest.fail "valid args rejected");
  let usage args =
    match T.parse_canon_args args with
    | Error msg ->
        Alcotest.(check bool) "mentions usage" true
          (String.starts_with ~prefix:"usage:" msg)
    | Ok _ -> Alcotest.fail "usage error not reported"
  in
  (* No file at all — the empty-argument usage error. *)
  usage [];
  usage [ "--strip" ];
  usage [ "--strip"; "a" ];
  usage [ "a.json"; "b.json" ]

let test_check_content () =
  Alcotest.(check int) "single valid document" 0
    (List.length (T.check_content ~path:"m.json" {|{"a":1}|}));
  Alcotest.(check int) "single malformed document" 1
    (List.length (T.check_content ~path:"m.json" "{"));
  Alcotest.(check int) "valid jsonl, blank lines ignored" 0
    (List.length (T.check_content ~path:"t.jsonl" "{\"a\":1}\n\n[2]\n"));
  match T.check_content ~path:"t.jsonl" "{\"a\":1}\nnope\n[2]\noops\n" with
  | [ p1; p2 ] ->
      Alcotest.(check string) "first bad line numbered" "t.jsonl:2" p1.T.where;
      Alcotest.(check string) "second bad line numbered" "t.jsonl:4" p2.T.where
  | ps -> Alcotest.failf "expected 2 problems, got %d" (List.length ps)

let test_check_file_missing () =
  match T.check_file "/nonexistent/nope.jsonl" with
  | [ p ] ->
      Alcotest.(check string) "problem names the path" "/nonexistent/nope.jsonl"
        p.T.where
  | ps -> Alcotest.failf "expected 1 problem, got %d" (List.length ps)

let suite =
  [
    Alcotest.test_case "strip semantics" `Quick test_strip_semantics;
    Alcotest.test_case "canon round-trip" `Quick test_canon_round_trip;
    Alcotest.test_case "canon errors" `Quick test_canon_errors;
    Alcotest.test_case "canon argument parsing" `Quick test_parse_canon_args;
    Alcotest.test_case "check_content" `Quick test_check_content;
    Alcotest.test_case "check_file on a missing file" `Quick
      test_check_file_missing;
  ]
