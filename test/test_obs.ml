module Json = Rtr_obs.Json
module Metrics = Rtr_obs.Metrics
module Trace = Rtr_obs.Trace
module Netsim = Rtr_des.Netsim
module Damage = Rtr_failure.Damage

(* --- json ----------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd\tcontrol:\001");
        ("i", Json.Int (-42));
        ("f", Json.Float 2.5);
        ("nan", Json.Float Float.nan);
        ("arr", Json.Arr [ Json.Null; Json.Bool true; Json.Bool false ]);
        ("empty_obj", Json.Obj []);
        ("empty_arr", Json.Arr []);
      ]
  in
  match Json.parse (Json.to_string doc) with
  | Error msg -> Alcotest.failf "own output did not parse: %s" msg
  | Ok parsed ->
      Alcotest.(check string)
        "string field survives escaping"
        "a\"b\\c\nd\tcontrol:\001"
        (match Json.member "s" parsed with
        | Some (Json.String s) -> s
        | _ -> "<missing>");
      Alcotest.(check bool)
        "int field" true
        (Json.member "i" parsed = Some (Json.Int (-42)));
      (* Non-finite floats must degrade to null, keeping output valid. *)
      Alcotest.(check bool)
        "nan became null" true
        (Json.member "nan" parsed = Some Json.Null)

let test_json_rejects_malformed () =
  let bad = [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "" ] in
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    bad

(* --- histogram quantiles -------------------------------------------- *)

let test_histogram_quantiles_uniform () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~registry:reg "h" in
  for i = 1 to 1000 do
    Metrics.Histogram.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Metrics.Histogram.count h);
  Alcotest.(check (float 1.0)) "sum" 500500.0 (Metrics.Histogram.sum h);
  let within q expected =
    let got = Metrics.Histogram.quantile h q in
    let rel = Float.abs (got -. expected) /. expected in
    if rel > 0.10 then
      Alcotest.failf "p%.0f: expected ~%.0f, got %.1f" (100. *. q) expected got
  in
  within 0.5 500.0;
  within 0.9 900.0;
  within 0.99 990.0

let test_histogram_constant_and_edges () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~registry:reg "h" in
  for _ = 1 to 50 do
    Metrics.Histogram.observe h 7.0
  done;
  List.iter
    (fun q ->
      let got = Metrics.Histogram.quantile h q in
      if Float.abs (got -. 7.0) > 0.2 then
        Alcotest.failf "constant distribution: q=%.2f gave %f" q got)
    [ 0.0; 0.5; 0.99; 1.0 ];
  (* Zero and negative observations land in the zero bucket. *)
  let z = Metrics.histogram ~registry:reg "z" in
  Metrics.Histogram.observe z 0.0;
  Metrics.Histogram.observe z (-3.0);
  Metrics.Histogram.observe z 100.0;
  Alcotest.(check (float 1e-9)) "median of {-3,0,100} ~ 0" 0.0
    (Metrics.Histogram.quantile z 0.5);
  (* Empty histogram: quantile is nan, json renders null. *)
  let e = Metrics.histogram ~registry:reg "e" in
  Alcotest.(check bool) "empty quantile nan" true
    (Float.is_nan (Metrics.Histogram.quantile e 0.5))

(* Sub-second observations — the pool's worker busy/idle seconds are
   fractions of a second — must land on non-negative bucket keys
   (raw log-bucketing sent them negative) and still quantile within
   the sketch's relative error. *)
let test_histogram_subsecond_buckets () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~registry:reg "busy_s" in
  List.iter (Metrics.Histogram.observe h) [ 1e-9; 4.2e-3; 0.25; 0.9; 12.5 ];
  let got = Metrics.Histogram.quantile h 0.5 in
  if Float.abs (got -. 0.25) /. 0.25 > 0.10 then
    Alcotest.failf "median of sub-second mix: expected ~0.25, got %g" got;
  let p50_small =
    let s = Metrics.histogram ~registry:reg "idle_s" in
    Metrics.Histogram.observe s 0.004;
    Metrics.Histogram.observe s 0.004;
    Metrics.Histogram.observe s 0.004;
    Metrics.Histogram.quantile s 0.5
  in
  if Float.abs (p50_small -. 0.004) /. 0.004 > 0.10 then
    Alcotest.failf "all-sub-second median: expected ~0.004, got %g" p50_small;
  (* No bucket key in the exported snapshot may be negative. *)
  let json = Metrics.Snapshot.to_json (Metrics.snapshot ~registry:reg ()) in
  let rec walk = function
    | Json.Obj fields ->
        List.iter
          (fun (k, v) ->
            if k = "buckets" then
              match v with
              | Json.Arr entries ->
                  List.iter
                    (function
                      | Json.Arr (Json.Int i :: _) ->
                          if i < 0 then
                            Alcotest.failf "negative bucket key %d" i
                      | _ -> ())
                    entries
              | _ -> ()
            else walk v)
          fields
    | Json.Arr items -> List.iter walk items
    | _ -> ()
  in
  walk json

(* --- registry + snapshot merge -------------------------------------- *)

let fill_registry spec =
  let reg = Metrics.create () in
  List.iter
    (fun (name, kind) ->
      match kind with
      | `C n -> Metrics.Counter.add (Metrics.counter ~registry:reg name) n
      | `G v -> Metrics.Gauge.set (Metrics.gauge ~registry:reg name) v
      | `H vs ->
          let h = Metrics.histogram ~registry:reg name in
          List.iter (Metrics.Histogram.observe h) vs)
    spec;
  Metrics.snapshot ~registry:reg ()

let test_snapshot_merge_associative () =
  let a =
    fill_registry
      [ ("c", `C 3); ("g", `G 1.5); ("h", `H [ 1.0; 2.0 ]); ("only_a", `C 7) ]
  in
  let b =
    fill_registry [ ("c", `C 5); ("g", `G 9.0); ("h", `H [ 100.0 ]) ]
  in
  let c =
    fill_registry
      [ ("c", `C 11); ("g", `G 4.0); ("h", `H [ 0.5 ]); ("only_c", `G 2.0) ]
  in
  let open Metrics.Snapshot in
  let left = merge (merge a b) c and right = merge a (merge b c) in
  Alcotest.(check string)
    "associative"
    (Json.to_string (to_json left))
    (Json.to_string (to_json right));
  Alcotest.(check (option int)) "counters add" (Some 19) (counter left "c");
  Alcotest.(check (option (float 1e-9))) "gauges max" (Some 9.0)
    (gauge left "g");
  Alcotest.(check (option int)) "disjoint names kept" (Some 7)
    (counter left "only_a");
  (* Merging with empty is the identity. *)
  Alcotest.(check string) "empty is neutral"
    (Json.to_string (to_json a))
    (Json.to_string (to_json (merge empty (merge a empty))))

let test_merge_pools_histograms () =
  let a = fill_registry [ ("h", `H (List.init 500 (fun i -> float_of_int (i + 1)))) ] in
  let b =
    fill_registry
      [ ("h", `H (List.init 500 (fun i -> float_of_int (i + 501)))) ]
  in
  let merged = Metrics.Snapshot.merge a b in
  match Metrics.Snapshot.quantile merged "h" 0.5 with
  | None -> Alcotest.fail "histogram lost in merge"
  | Some p50 ->
      if Float.abs (p50 -. 500.0) /. 500.0 > 0.10 then
        Alcotest.failf "pooled median: expected ~500, got %f" p50

let test_kind_mismatch_rejected () =
  let reg = Metrics.create () in
  ignore (Metrics.counter ~registry:reg "m");
  Alcotest.check_raises "re-register as gauge"
    (Invalid_argument "Metrics: \"m\" already registered as a counter")
    (fun () -> ignore (Metrics.gauge ~registry:reg "m"))

(* --- spans ----------------------------------------------------------- *)

let with_sink sink f =
  Trace.set_sink (Some sink);
  Fun.protect ~finally:(fun () -> Trace.set_sink None) f

let with_fake_clock f =
  let t = ref 0.0 in
  Trace.set_clock (fun () ->
      t := !t +. 0.25;
      !t);
  Fun.protect ~finally:(fun () -> Trace.set_clock Unix.gettimeofday) f

let test_disabled_spans_are_noops () =
  Trace.set_sink None;
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  let sink, recorded = Trace.memory_sink () in
  (* Nothing reaches a sink that is not installed, and with_ is
     transparent for values and exceptions. *)
  Alcotest.(check int) "value passes through" 42
    (Trace.with_ "s" (fun () -> 42));
  Trace.event "e";
  Alcotest.check_raises "exception passes through" Exit (fun () ->
      Trace.with_ "s" (fun () -> raise Exit));
  ignore sink;
  Alcotest.(check int) "no records" 0 (List.length (recorded ()))

let test_spans_nest_and_record () =
  let sink, recorded = Trace.memory_sink () in
  with_fake_clock @@ fun () ->
  with_sink sink @@ fun () ->
  let result =
    Trace.with_ "outer" ~attrs:[ ("k", "v") ] (fun () ->
        Trace.with_ "inner" (fun () -> ());
        Trace.event "tick";
        "done")
  in
  Alcotest.(check string) "result" "done" result;
  match recorded () with
  | [
   Trace.Span { name = n1; depth = d1; dur = dur1; _ };
   Trace.Event { name = ne; _ };
   Trace.Span { name = n2; depth = d2; dur = dur2; attrs = a2; _ };
  ] ->
      (* inner closes before outer: emission order is completion order *)
      Alcotest.(check string) "inner name" "inner" n1;
      Alcotest.(check int) "inner depth" 1 d1;
      Alcotest.(check string) "event name" "tick" ne;
      Alcotest.(check string) "outer name" "outer" n2;
      Alcotest.(check int) "outer depth" 0 d2;
      Alcotest.(check bool) "outer attrs kept" true (a2 = [ ("k", "v") ]);
      Alcotest.(check bool) "durations positive" true
        (dur1 > 0.0 && dur2 > dur1)
  | rs -> Alcotest.failf "unexpected records (%d)" (List.length rs)

let test_jsonl_roundtrip () =
  let path = Filename.temp_file "rtr_obs_test" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  let sink = Trace.jsonl_sink oc in
  with_fake_clock (fun () ->
      with_sink sink (fun () ->
          Trace.with_ "alpha" ~attrs:[ ("topo", "AS209") ] (fun () ->
              Trace.with_ "beta" (fun () -> ()));
          Trace.event "ev" ~attrs:[ ("quote", "a\"b") ];
          Trace.flush ()));
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Alcotest.(check int) "three lines" 3 (List.length lines);
  let parsed =
    List.map
      (fun l ->
        match Json.parse l with
        | Ok v -> v
        | Error msg -> Alcotest.failf "line %S not valid JSON: %s" l msg)
      lines
  in
  let types =
    List.map
      (fun v ->
        match Json.member "type" v with
        | Some (Json.String t) -> t
        | _ -> "<none>")
      parsed
  in
  Alcotest.(check (list string))
    "record types" [ "span"; "span"; "event" ] types;
  let beta = List.nth parsed 0 and alpha = List.nth parsed 1 in
  Alcotest.(check bool) "beta nested" true
    (Json.member "depth" beta = Some (Json.Int 1));
  Alcotest.(check bool) "alpha at top level" true
    (Json.member "depth" alpha = Some (Json.Int 0));
  match Json.member "attrs" alpha with
  | Some (Json.Obj [ ("topo", Json.String "AS209") ]) -> ()
  | _ -> Alcotest.fail "alpha attrs wrong"

(* --- end-to-end: netsim counters ------------------------------------ *)

let counter_value name =
  match Metrics.Snapshot.counter (Metrics.snapshot ()) name with
  | Some n -> n
  | None -> Alcotest.failf "counter %S not registered" name

let test_netsim_counters_end_to_end () =
  let topo = Rtr_topo.Paper_example.topology () in
  let g = Rtr_topo.Topology.graph topo in
  let damage =
    Damage.of_failed g
      ~nodes:[ Rtr_topo.Paper_example.failed_router ]
      ~links:(Rtr_topo.Paper_example.cut_links ())
  in
  let v = Rtr_topo.Paper_example.v in
  let flows = [ { Netsim.src = v 7; dst = v 17; rate_pps = 100.0 } ] in
  let config =
    {
      Netsim.igp = Rtr_igp.Igp_config.classic;
      rtr_enabled = true;
      t_fail = 0.5;
      t_end = 4.0;
      flows;
      episodes = [];
    }
  in
  let before = Metrics.snapshot () in
  let sink, recorded = Trace.memory_sink () in
  let stats = with_sink sink (fun () -> Netsim.run topo damage config) in
  let delta name =
    counter_value name
    - Option.value ~default:0 (Metrics.Snapshot.counter before name)
  in
  (* The global counters must agree exactly with the run's own stats. *)
  Alcotest.(check int) "generated" stats.Netsim.generated
    (delta "netsim.generated");
  Alcotest.(check int) "delivered" stats.Netsim.delivered
    (delta "netsim.delivered");
  Alcotest.(check int) "phase1 packets" stats.Netsim.phase1_packets
    (delta "netsim.phase1_packets");
  let blackholes =
    Option.value ~default:0
      (List.assoc_opt Netsim.Blackhole stats.Netsim.drops_by_reason)
  in
  Alcotest.(check int) "blackhole drops" blackholes
    (delta "netsim.drop.blackhole");
  Alcotest.(check bool) "events processed" true (delta "netsim.events" > 0);
  (* Every drop reason is pre-registered even when it never fired. *)
  List.iter
    (fun name -> ignore (counter_value name))
    [
      "netsim.drop.blackhole";
      "netsim.drop.no_route";
      "netsim.drop.unreachable_in_view";
      "netsim.drop.missed_failure";
      "netsim.drop.recovery_impossible";
      "netsim.drop.ttl_expired";
    ];
  (* The run produced a netsim.run span on the installed sink. *)
  let spans =
    List.filter
      (function
        | Trace.Span { name; _ } -> name = "netsim.run" | _ -> false)
      (recorded ())
  in
  Alcotest.(check int) "one netsim.run span" 1 (List.length spans)

let test_phase1_counters_flow () =
  let topo = Rtr_topo.Paper_example.topology () in
  let g = Rtr_topo.Topology.graph topo in
  let damage =
    Damage.of_failed g
      ~nodes:[ Rtr_topo.Paper_example.failed_router ]
      ~links:(Rtr_topo.Paper_example.cut_links ())
  in
  let before = Metrics.snapshot () in
  let p1 =
    Rtr_core.Phase1.run topo damage ~initiator:Rtr_topo.Paper_example.initiator
      ~trigger:Rtr_topo.Paper_example.trigger ()
  in
  let delta name =
    counter_value name
    - Option.value ~default:0 (Metrics.Snapshot.counter before name)
  in
  Alcotest.(check int) "one run" 1 (delta "phase1.runs");
  Alcotest.(check int) "hops attributed" p1.Rtr_core.Phase1.hops
    (delta "phase1.hops_walked")

(* --- REPRO_CASES hardening ------------------------------------------ *)

let test_repro_cases_fallback () =
  let check value expected =
    Unix.putenv "REPRO_CASES" value;
    let q =
      (Rtr_sim.Experiments.default_config ()).Rtr_sim.Experiments
      .recoverable_per_topo
    in
    Unix.putenv "REPRO_CASES" "";
    Alcotest.(check int) (Printf.sprintf "REPRO_CASES=%S" value) expected q
  in
  check "123" 123;
  check " 77 " 77;
  check "abc" 2000;
  check "0" 2000;
  check "-5" 2000;
  check "" 2000

let suite =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json rejects malformed" `Quick
      test_json_rejects_malformed;
    Alcotest.test_case "histogram quantiles (uniform)" `Quick
      test_histogram_quantiles_uniform;
    Alcotest.test_case "histogram sub-second buckets" `Quick
      test_histogram_subsecond_buckets;
    Alcotest.test_case "histogram constant + edges" `Quick
      test_histogram_constant_and_edges;
    Alcotest.test_case "snapshot merge associative" `Quick
      test_snapshot_merge_associative;
    Alcotest.test_case "merge pools histograms" `Quick
      test_merge_pools_histograms;
    Alcotest.test_case "kind mismatch rejected" `Quick
      test_kind_mismatch_rejected;
    Alcotest.test_case "disabled spans are no-ops" `Quick
      test_disabled_spans_are_noops;
    Alcotest.test_case "spans nest and record" `Quick
      test_spans_nest_and_record;
    Alcotest.test_case "jsonl writer round-trip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "netsim counters end-to-end" `Quick
      test_netsim_counters_end_to_end;
    Alcotest.test_case "phase1 counters flow" `Quick test_phase1_counters_flow;
    Alcotest.test_case "REPRO_CASES fallback" `Quick test_repro_cases_fallback;
  ]
