module Runner = Rtr_sim.Runner
module Scenario = Rtr_sim.Scenario

let small_run () =
  let topo = Rtr_topo.Isp.load_by_name "AS1239" in
  let g = Rtr_topo.Topology.graph topo in
  let table = Rtr_routing.Route_table.compute (Rtr_graph.View.full g) in
  let mrc = Rtr_baselines.Mrc.build_auto g in
  let rng = Rtr_util.Rng.make 31 in
  let rec first_nonempty tries =
    let s = Scenario.generate topo table rng () in
    if s.Scenario.cases <> [] || tries > 50 then s else first_nonempty (tries + 1)
  in
  let scenario = first_nonempty 0 in
  (scenario, Runner.run_scenario ~mrc scenario)

let test_one_result_per_case () =
  let scenario, results = small_run () in
  Alcotest.(check int) "arity"
    (List.length scenario.Scenario.cases)
    (List.length results)

let test_rtr_invariants () =
  let _, results = small_run () in
  List.iter
    (fun (r : Runner.result) ->
      Alcotest.(check bool) "phase 1 completed" true r.Runner.rtr_p1_completed;
      Alcotest.(check int) "one byte record per hop" r.Runner.rtr_p1_hops
        (List.length r.Runner.rtr_p1_bytes);
      Alcotest.(check int) "rtr always one calculation" 1
        (Runner.rtr_sp_calculations r);
      (match r.Runner.rtr_stretch with
      | Some s ->
          Alcotest.(check (float 1e-9)) "Theorem 2: stretch exactly 1" 1.0 s
      | None -> ());
      if r.Runner.rtr_recovered then
        Alcotest.(check int) "no waste when recovered" 0 r.Runner.rtr_wasted_tx;
      match r.Runner.case.Scenario.kind with
      | Scenario.Recoverable -> ()
      | Scenario.Irrecoverable ->
          Alcotest.(check bool) "never recovered" false r.Runner.rtr_recovered)
    results

let test_fcp_invariants () =
  let _, results = small_run () in
  List.iter
    (fun (r : Runner.result) ->
      Alcotest.(check bool) "at least one calculation" true (r.Runner.fcp_calcs >= 1);
      match r.Runner.case.Scenario.kind with
      | Scenario.Recoverable ->
          Alcotest.(check bool) "fcp always delivers recoverable" true
            r.Runner.fcp_delivered;
          (match r.Runner.fcp_stretch with
          | Some s -> Alcotest.(check bool) "stretch >= 1" true (s >= 1.0 -. 1e-9)
          | None -> Alcotest.fail "delivered implies stretch")
      | Scenario.Irrecoverable ->
          Alcotest.(check bool) "fcp never delivers irrecoverable" false
            r.Runner.fcp_delivered)
    results

let test_mrc_invariants () =
  let _, results = small_run () in
  List.iter
    (fun (r : Runner.result) ->
      match (r.Runner.mrc_delivered, r.Runner.mrc_stretch) with
      | true, Some s -> Alcotest.(check bool) "stretch >= 1" true (s >= 1.0 -. 1e-9)
      | true, None ->
          (* Irrecoverable cases have no yardstick, so no stretch. *)
          Alcotest.(check bool) "only without yardstick" true
            (r.Runner.case.Scenario.shortest_after = None)
      | false, Some _ -> Alcotest.fail "stretch without delivery"
      | false, None -> ())
    results

(* Regression: sessions must be keyed by (initiator, trigger), not by
   initiator alone.  Phase 1's walk starts at the trigger, so two cases
   sharing an initiator but detecting through different triggers are
   distinct sessions — a cache keyed on the initiator only would hand
   the second case the first case's walk. *)
let test_sessions_keyed_by_initiator_and_trigger () =
  let topo = Rtr_topo.Paper_example.topology () in
  let g = Rtr_topo.Topology.graph topo in
  let table = Rtr_routing.Route_table.compute (Rtr_graph.View.full g) in
  let module PE = Rtr_topo.Paper_example in
  let damage =
    Rtr_failure.Damage.of_failed g ~nodes:[ PE.failed_router ]
      ~links:(PE.cut_links ())
  in
  (* Find a live router that detects the failure through two distinct
     dead-end neighbours (e.g. a neighbour of the failed router that
     also lost a cut link). *)
  let initiator, triggers =
    let rec find u =
      if u >= Rtr_graph.Graph.n_nodes g then
        Alcotest.fail "expected an initiator with two distinct triggers"
      else if Rtr_failure.Damage.node_ok damage u then
        match
          List.map fst (Rtr_failure.Damage.unreachable_neighbors damage g u)
        with
        | _ :: _ :: _ as ts -> (u, ts)
        | _ -> find (u + 1)
      else find (u + 1)
    in
    find 0
  in
  match triggers with
  | t1 :: t2 :: _ ->
      let case trigger =
        {
          Scenario.initiator;
          trigger;
          dst = PE.destination;
          kind = Scenario.Recoverable;
          shortest_after = None;
        }
      in
      let scenario =
        {
          Scenario.topo;
          table;
          area =
            Rtr_failure.Area.disc
              ~center:(Rtr_geom.Point.make 0.0 0.0)
              ~radius:1.0;
          damage;
          cases = [ case t1; case t2 ];
        }
      in
      let mrc = Rtr_baselines.Mrc.build_auto g in
      let results = Runner.run_scenario ~mrc scenario in
      List.iter2
        (fun trigger (r : Runner.result) ->
          let p1 =
            Rtr_core.Phase1.run topo damage ~initiator ~trigger ()
          in
          Alcotest.(check int)
            (Printf.sprintf "phase-1 hops for trigger v%d" trigger)
            p1.Rtr_core.Phase1.hops r.Runner.rtr_p1_hops)
        [ t1; t2 ] results
  | _ -> Alcotest.fail "expected two distinct triggers at the initiator"

(* BENCH_0003 regression at the harness level: the runner reads each
   recovered case's stretch numerator back through the per-destination
   phase-2 cache, so any run with a recovered case must record cache
   hits — the counter sat at 0 for 10k+ calculations before. *)
let test_recovered_cases_hit_phase2_cache () =
  let c = Rtr_obs.Metrics.counter "phase2.cache_hits" in
  let v0 = Rtr_obs.Metrics.Counter.value c in
  let _, results = small_run () in
  let recovered =
    List.length (List.filter (fun r -> r.Runner.rtr_recovered) results)
  in
  Alcotest.(check bool) "at least one hit per recovered case" true
    (Rtr_obs.Metrics.Counter.value c - v0 >= recovered)

let suite =
  [
    Alcotest.test_case "one result per case" `Quick test_one_result_per_case;
    Alcotest.test_case "recovered cases hit the phase-2 cache" `Quick
      test_recovered_cases_hit_phase2_cache;
    Alcotest.test_case "sessions keyed by (initiator, trigger)" `Quick
      test_sessions_keyed_by_initiator_and_trigger;
    Alcotest.test_case "rtr invariants" `Quick test_rtr_invariants;
    Alcotest.test_case "fcp invariants" `Quick test_fcp_invariants;
    Alcotest.test_case "mrc invariants" `Quick test_mrc_invariants;
  ]
