module Pqueue = Rtr_graph.Pqueue

let test_empty () =
  let h = Pqueue.create () in
  Alcotest.(check bool) "is_empty" true (Pqueue.is_empty h);
  Alcotest.(check int) "length" 0 (Pqueue.length h);
  Alcotest.(check (option (pair int int))) "pop" None (Pqueue.pop h)

let test_ordering () =
  let h = Pqueue.create () in
  List.iter
    (fun (p, t) -> Pqueue.push h ~prio:p ~tag:t)
    [ (5, 1); (3, 2); (9, 3); (3, 0); (1, 7) ];
  let drain () =
    let rec go acc =
      match Pqueue.pop h with None -> List.rev acc | Some x -> go (x :: acc)
    in
    go []
  in
  Alcotest.(check (list (pair int int)))
    "priority then tag order"
    [ (1, 7); (3, 0); (3, 2); (5, 1); (9, 3) ]
    (drain ())

let test_clear () =
  let h = Pqueue.create () in
  Pqueue.push h ~prio:1 ~tag:1;
  Pqueue.clear h;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty h)

let test_growth () =
  let h = Pqueue.create () in
  for i = 1000 downto 1 do
    Pqueue.push h ~prio:i ~tag:i
  done;
  Alcotest.(check int) "length" 1000 (Pqueue.length h);
  Alcotest.(check (option (pair int int))) "min" (Some (1, 1)) (Pqueue.pop h)

let heap_sorts =
  QCheck.Test.make ~name:"pqueue drains in sorted order" ~count:100
    QCheck.(list (pair small_nat small_nat))
    (fun items ->
      let h = Pqueue.create () in
      List.iter (fun (p, t) -> Pqueue.push h ~prio:p ~tag:t) items;
      let rec drain acc =
        match Pqueue.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      let out = drain [] in
      out = List.sort compare items)

(* --- Dial (bucket-queue) mode --------------------------------------- *)

let drain h =
  let rec go acc =
    match Pqueue.pop h with None -> List.rev acc | Some x -> go (x :: acc)
  in
  go []

let test_dial_selected () =
  let d = Pqueue.create_bounded ~bound:100 in
  Alcotest.(check bool) "bound 100 -> dial" true (Pqueue.uses_dial d);
  let h = Pqueue.create_bounded ~bound:(-1) in
  Alcotest.(check bool) "bound -1 -> heap" false (Pqueue.uses_dial h);
  let big = Pqueue.create_bounded ~bound:(Pqueue.max_dial_bound + 1) in
  Alcotest.(check bool) "bound over max -> heap" false (Pqueue.uses_dial big);
  let edge = Pqueue.create_bounded ~bound:Pqueue.max_dial_bound in
  Alcotest.(check bool) "bound at max -> dial" true (Pqueue.uses_dial edge)

let test_dial_bound_for () =
  Alcotest.(check int) "unit costs" 9 (Pqueue.dial_bound_for ~max_cost:1 ~n_nodes:10);
  Alcotest.(check int) "single node" 0 (Pqueue.dial_bound_for ~max_cost:7 ~n_nodes:1);
  Alcotest.(check int) "overflowing product" (-1)
    (Pqueue.dial_bound_for ~max_cost:(Pqueue.max_dial_bound + 1) ~n_nodes:2);
  Alcotest.(check int) "huge cost, no overflow trap" (-1)
    (Pqueue.dial_bound_for ~max_cost:max_int ~n_nodes:1000)

(* The monotone-bound contract: dial mode rejects out-of-range
   priorities loudly instead of corrupting buckets. *)
let test_dial_bound_violation () =
  let d = Pqueue.create_bounded ~bound:10 in
  Pqueue.push d ~prio:0 ~tag:1;
  Pqueue.push d ~prio:10 ~tag:2;
  Alcotest.check_raises "prio = bound + 1 rejected"
    (Invalid_argument "Pqueue.push: priority 11 outside dial bound [0,10]")
    (fun () -> Pqueue.push d ~prio:11 ~tag:3);
  Alcotest.check_raises "negative prio rejected"
    (Invalid_argument "Pqueue.push: priority -1 outside dial bound [0,10]")
    (fun () -> Pqueue.push d ~prio:(-1) ~tag:3);
  (* The in-range pushes survive the failed ones. *)
  Alcotest.(check (list (pair int int)))
    "queue intact" [ (0, 1); (10, 2) ] (drain d)

(* The bucket at exactly [bound] works — the classic off-by-one wrap
   position of a bucket array. *)
let test_dial_bucket_boundary () =
  let b = 37 in
  let d = Pqueue.create_bounded ~bound:b in
  Pqueue.push d ~prio:b ~tag:5;
  Pqueue.push d ~prio:b ~tag:3;
  Pqueue.push d ~prio:0 ~tag:9;
  Alcotest.(check (list (pair int int)))
    "min bucket, then max bucket with tag ties"
    [ (0, 9); (b, 3); (b, 5) ]
    (drain d);
  (* Reuse across clears keeps the boundary bucket sound. *)
  Pqueue.push d ~prio:b ~tag:1;
  Pqueue.clear d;
  Pqueue.push d ~prio:b ~tag:2;
  Alcotest.(check (option (pair int int))) "after clear" (Some (b, 2))
    (Pqueue.pop d)

(* Lazy-deletion decrease-key: re-insert at a better priority, the
   better copy pops first and the caller skips the stale one — both
   disciplines expose the duplicate identically. *)
let test_dial_decrease_key () =
  let run q =
    Pqueue.push q ~prio:8 ~tag:4;
    Pqueue.push q ~prio:5 ~tag:7;
    (* decrease tag 4: 8 -> 2 (re-insert; the 8 becomes stale) *)
    Pqueue.push q ~prio:2 ~tag:4;
    drain q
  in
  let dial = run (Pqueue.create_bounded ~bound:10) in
  let heap = run (Pqueue.create ()) in
  Alcotest.(check (list (pair int int)))
    "both disciplines expose the stale copy in order"
    [ (2, 4); (5, 7); (8, 4) ]
    dial;
  Alcotest.(check (list (pair int int))) "dial = heap" heap dial

(* Differential: identical random workloads (with equal-priority tag
   ties and duplicate entries) pop identically in both disciplines,
   including interleaved pops partway through. *)
let dial_matches_heap =
  QCheck.Test.make ~name:"dial pops bit-identically to heap" ~count:300
    QCheck.(
      pair
        (list (pair (int_bound 50) (int_bound 20)))
        (list (pair (int_bound 50) (int_bound 20))))
    (fun (batch1, batch2) ->
      let dial = Pqueue.create_bounded ~bound:50 in
      let heap = Pqueue.create () in
      let feed items =
        List.iter
          (fun (p, t) ->
            Pqueue.push dial ~prio:p ~tag:t;
            Pqueue.push heap ~prio:p ~tag:t)
          items
      in
      (* Push a batch, drain half, push more, drain the rest: the
         cursor must rewind correctly when later pushes undercut it. *)
      feed batch1;
      let half = List.length batch1 / 2 in
      let ok = ref true in
      for _ = 1 to half do
        if Pqueue.pop dial <> Pqueue.pop heap then ok := false
      done;
      feed batch2;
      let rec drain_both () =
        let a = Pqueue.pop dial and b = Pqueue.pop heap in
        if a <> b then ok := false;
        if a <> None && !ok then drain_both ()
      in
      drain_both ();
      !ok && Pqueue.is_empty dial && Pqueue.is_empty heap)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "growth" `Quick test_growth;
    QCheck_alcotest.to_alcotest heap_sorts;
    Alcotest.test_case "dial selection" `Quick test_dial_selected;
    Alcotest.test_case "dial bound_for" `Quick test_dial_bound_for;
    Alcotest.test_case "dial bound violation" `Quick test_dial_bound_violation;
    Alcotest.test_case "dial bucket boundary" `Quick test_dial_bucket_boundary;
    Alcotest.test_case "dial decrease-key" `Quick test_dial_decrease_key;
    QCheck_alcotest.to_alcotest dial_matches_heap;
  ]
