module Experiments = Rtr_sim.Experiments
module Pipeline = Rtr_sim.Pipeline
module Stream = Rtr_sim.Stream
module Shard_store = Rtr_sim.Shard_store
module Report = Rtr_sim.Report
module Metrics = Rtr_obs.Metrics
module Isp = Rtr_topo.Isp

(* Same fixture as Test_experiments: 120 cases on the two smallest
   ASes, sequential. *)
let config =
  lazy
    {
      Experiments.presets =
        [ Option.get (Isp.find "AS1239"); Option.get (Isp.find "AS4323") ];
      recoverable_per_topo = 120;
      irrecoverable_per_topo = 120;
      seed = 3;
      mrc_k = None;
      jobs = 1;
    }

let generated =
  lazy
    (let c = Lazy.force config in
     Pipeline.generate ~presets:c.Experiments.presets
       ~rec_quota:c.Experiments.recoverable_per_topo
       ~irr_quota:c.Experiments.irrecoverable_per_topo ~seed:c.Experiments.seed
       ~mrc_k:c.Experiments.mrc_k ())

(* One in-process evaluation of the generated records, shared by the
   codec tests. *)
let evaluated =
  lazy
    (let header, records = Lazy.force generated in
     let remaining = ref records in
     let next () =
       match !remaining with
       | [] -> None
       | r :: rest ->
           remaining := rest;
           Some r
     in
     let out = ref [] in
     let _mrc =
       Pipeline.evaluate ~jobs:1 ~header ~next
         ~emit:(fun r -> out := r :: !out)
         ()
     in
     List.rev !out)

(* --- temp dirs ------------------------------------------------------- *)

let with_tmpdir f =
  let dir = Filename.temp_file "rtr_test_stream" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let cleanup () =
    Array.iter
      (fun name -> Sys.remove (Filename.concat dir name))
      (Sys.readdir dir);
    Sys.rmdir dir
  in
  Fun.protect ~finally:cleanup (fun () -> f dir)

(* Evaluate one shard of a stream file into a shard file, exactly as
   [bin/rtr_sim evaluate] does. *)
let evaluate_shard ~stream_path ~path ~resume ~shard ~shards =
  let header, next = Stream.open_reader stream_path in
  match
    Shard_store.open_writer ~path ~resume ~shard ~shards
      ~count:header.Stream.count
  with
  | Shard_store.Complete -> ()
  | Shard_store.Writer (w, committed) ->
      let rec filtered () =
        match next () with
        | None -> None
        | Some r
          when r.Stream.seq mod shards = shard && not (committed r.Stream.seq)
          ->
            Some r
        | Some _ -> filtered ()
      in
      let mrc =
        Pipeline.evaluate ~jobs:1 ~header ~next:filtered
          ~emit:(Shard_store.append w) ()
      in
      Shard_store.finish w ~mrc

(* --- codec round-trips ---------------------------------------------- *)

let test_header_roundtrip () =
  let header, _ = Lazy.force generated in
  (match Stream.parse_header (Stream.header_line header) with
  | Ok h -> Alcotest.(check bool) "header round-trips" true (h = header)
  | Error e -> Alcotest.fail ("header did not parse: " ^ e));
  Alcotest.(check bool) "count covers all topo records" true
    (header.Stream.count
    = List.fold_left
        (fun acc (s : Stream.topo_stat) -> acc + s.Stream.records)
        0 header.Stream.topos)

let test_scenario_roundtrip () =
  let _, records = Lazy.force generated in
  Alcotest.(check bool) "records present" true (records <> []);
  List.iter
    (fun (r : Stream.scenario) ->
      match Stream.parse_scenario (Stream.scenario_line r) with
      | Error e -> Alcotest.fail ("scenario did not parse: " ^ e)
      | Ok d ->
          (* The area is informational (evaluation reruns from the
             failed node/link sets), so it round-trips to printed
             precision; everything the evaluation consumes is exact. *)
          let exact x = { x with Stream.area = (0.0, 0.0, 0.0) } in
          Alcotest.(check bool)
            (Printf.sprintf "seq %d integer payload exact" r.Stream.seq)
            true
            (exact d = exact r);
          let dx, dy, dr = d.Stream.area and x, y, rad = r.Stream.area in
          List.iter2
            (fun a b ->
              Alcotest.(check bool) "area to printed precision" true
                (Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs b)))
            [ dx; dy; dr ] [ x; y; rad ])
    records

let test_result_roundtrip () =
  let results = Lazy.force evaluated in
  Alcotest.(check bool) "results present" true (results <> []);
  List.iter
    (fun (r : Stream.result) ->
      match Stream.parse_result (Stream.result_line r) with
      | Error e -> Alcotest.fail ("result did not parse: " ^ e)
      | Ok d ->
          (* Bit-exact, floats included: the stretches are reconstructed
             from the integer cost numerators by the same function the
             runner derived them with. *)
          Alcotest.(check bool)
            (Printf.sprintf "seq %d round-trips exactly" r.Stream.rseq)
            true (d = r))
    results

(* --- episode records and stream versioning --------------------------- *)

(* Tiny synthetic fixtures: the codec is plain data, no topology
   needed. *)
let tiny_header =
  {
    Stream.seed = 1;
    mrc_k = None;
    rec_quota = 1;
    irr_quota = 0;
    topos =
      [ { Stream.as_name = "tiny"; areas = 1; rec_cases = 1; irr_cases = 0; records = 1 } ];
    count = 1;
  }

let tiny_record ~episodes =
  {
    Stream.seq = 0;
    topo = 0;
    area = (1.0, 2.0, 3.0);
    failed_nodes = [ 1 ];
    failed_links = [ 0; 2 ];
    episodes;
    cases =
      [
        {
          Rtr_sim.Scenario.initiator = 0;
          trigger = 1;
          dst = 2;
          kind = Rtr_sim.Scenario.Recoverable;
          shortest_after = Some 7;
        };
      ];
  }

let tiny_episodes =
  [
    {
      Rtr_sim.Scenario.at_cs = 25;
      fail_nodes = [ 1; 2 ];
      fail_links = [ 0 ];
      restore_nodes = [];
      restore_links = [ 3; 4 ];
    };
    {
      Rtr_sim.Scenario.at_cs = 75;
      fail_nodes = [];
      fail_links = [];
      restore_nodes = [ 1 ];
      restore_links = [ 0 ];
    };
  ]

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_episode_record_roundtrip () =
  (* Episodes are integer-only, so the round-trip is exact — including
     empty halves and multiple events per record. *)
  let r = tiny_record ~episodes:tiny_episodes in
  match Stream.parse_scenario (Stream.scenario_line r) with
  | Error e -> Alcotest.fail ("episode record did not parse: " ^ e)
  | Ok d -> Alcotest.(check bool) "round-trips exactly" true (d = r)

let test_v1_stream_bit_identical () =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "s.jsonl" in
  (* Episode-free records write the v1 format, byte for byte: no "ep"
     key, no version bump — a pre-episode reader still accepts the
     file and old streams hash identically. *)
  let plain = tiny_record ~episodes:[] in
  Stream.write path tiny_header [ plain ];
  let content = In_channel.with_open_bin path In_channel.input_all in
  Alcotest.(check string) "byte-identical to a v1 writer"
    (Stream.header_line tiny_header ^ "\n" ^ Stream.scenario_line plain ^ "\n")
    content;
  Alcotest.(check bool) "tagged rtr-stream/1" true
    (contains content "\"rtr-stream/1\"");
  Alcotest.(check bool) "no ep key on episode-free records" true
    (not (contains content "\"ep\""));
  let h, next = Stream.open_reader path in
  Alcotest.(check bool) "v1 header decodes" true (h = tiny_header);
  (match next () with
  | Some d ->
      Alcotest.(check bool) "v1 record decodes with no episodes" true
        (d = plain && d.Stream.episodes = [])
  | None -> Alcotest.fail "record missing");
  ignore (next ());
  (* Any record carrying episodes promotes the whole stream to v2. *)
  let with_ep = tiny_record ~episodes:tiny_episodes in
  Stream.write path tiny_header [ with_ep ];
  let v2 = In_channel.with_open_bin path In_channel.input_all in
  Alcotest.(check string) "v2 header emitted"
    (Stream.header_line ~format:Stream.format_stream_v2 tiny_header
    ^ "\n"
    ^ Stream.scenario_line with_ep
    ^ "\n")
    v2;
  let h2, next2 = Stream.open_reader path in
  Alcotest.(check bool) "v2 header decodes" true (h2 = tiny_header);
  (match next2 () with
  | Some d -> Alcotest.(check bool) "episodes survive the file" true (d = with_ep)
  | None -> Alcotest.fail "record missing");
  ignore (next2 ())

(* --- the staged file pipeline vs the in-memory collectors ----------- *)

let check_same_data label (a : Experiments.topo_data list)
    (b : Experiments.topo_data list) =
  Alcotest.(check int) (label ^ ": topology count") (List.length a)
    (List.length b);
  List.iter2
    (fun (x : Experiments.topo_data) (y : Experiments.topo_data) ->
      Alcotest.(check string)
        (label ^ ": preset")
        x.Experiments.preset.Isp.as_name y.Experiments.preset.Isp.as_name;
      Alcotest.(check int)
        (label ^ ": mrc configs")
        x.Experiments.mrc_configs y.Experiments.mrc_configs;
      Alcotest.(check bool)
        (label ^ ": recoverable identical")
        true
        (x.Experiments.recoverable = y.Experiments.recoverable);
      Alcotest.(check bool)
        (label ^ ": irrecoverable identical")
        true
        (x.Experiments.irrecoverable = y.Experiments.irrecoverable))
    a b

let test_file_pipeline_matches_collect () =
  let c = Lazy.force config in
  let header, records = Lazy.force generated in
  with_tmpdir @@ fun dir ->
  let stream_path = Filename.concat dir "scenarios.jsonl" in
  let shard_path i = Filename.concat dir (Printf.sprintf "shard%d.jsonl" i) in
  Stream.write stream_path header records;
  (* The written stream re-reads to the same header and records. *)
  Alcotest.(check bool) "header survives the file" true
    (Stream.read_header stream_path = header);
  evaluate_shard ~stream_path ~path:(shard_path 0) ~resume:false ~shard:0
    ~shards:2;
  evaluate_shard ~stream_path ~path:(shard_path 1) ~resume:false ~shard:1
    ~shards:2;
  let from_files =
    Experiments.reduce_shards ~header
      [ Shard_store.load (shard_path 0); Shard_store.load (shard_path 1) ]
  in
  check_same_data "files vs collect" from_files (Experiments.collect c);
  check_same_data "files vs legacy" from_files (Experiments.collect_legacy c)

(* --- crash and resume ------------------------------------------------ *)

(* Chop the shard's footer and half of its last record, leaving an
   unterminated torn tail — the footprint of a writer killed mid
   [append]. *)
let kill_tail path =
  let content = In_channel.with_open_text path In_channel.input_all in
  let lines =
    match List.rev (String.split_on_char '\n' content) with
    | "" :: rev -> List.rev rev
    | rev -> List.rev rev
  in
  match List.rev lines with
  | _footer :: last :: keep_rev ->
      let oc = open_out path in
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        (List.rev keep_rev);
      output_string oc (String.sub last 0 (min 50 (String.length last)));
      close_out oc
  | _ -> Alcotest.fail "shard too short to truncate"

let counter_of snap name =
  Option.value ~default:0 (Metrics.Snapshot.counter snap name)

let test_crash_resume () =
  let header, records = Lazy.force generated in
  with_tmpdir @@ fun dir ->
  let stream_path = Filename.concat dir "scenarios.jsonl" in
  let shard_path i = Filename.concat dir (Printf.sprintf "shard%d.jsonl" i) in
  Stream.write stream_path header records;
  evaluate_shard ~stream_path ~path:(shard_path 0) ~resume:false ~shard:0
    ~shards:2;
  evaluate_shard ~stream_path ~path:(shard_path 1) ~resume:false ~shard:1
    ~shards:2;
  let uninterrupted =
    Experiments.reduce_shards ~header
      [ Shard_store.load (shard_path 0); Shard_store.load (shard_path 1) ]
  in
  let intact_records = (Shard_store.load (shard_path 0)).Shard_store.results in
  (* Kill shard 0 mid-record. *)
  kill_tail (shard_path 0);
  (* The loader refuses the torn shard outright. *)
  (match Shard_store.load (shard_path 0) with
  | _ -> Alcotest.fail "loader accepted a torn shard"
  | exception Failure _ -> ());
  (* Resume: the torn tail is dropped, committed records are kept, and
     only the missing work re-runs. *)
  let before = Metrics.snapshot () in
  evaluate_shard ~stream_path ~path:(shard_path 0) ~resume:true ~shard:0
    ~shards:2;
  let after = Metrics.snapshot () in
  Alcotest.(check int) "one torn tail truncated" 1
    (counter_of after "checkpoint.torn_tail"
    - counter_of before "checkpoint.torn_tail");
  Alcotest.(check int) "one shard resumed" 1
    (counter_of after "checkpoint.resumed"
    - counter_of before "checkpoint.resumed");
  Alcotest.(check int) "only the killed record re-ran" 1
    (counter_of after "checkpoint.commits"
    - counter_of before "checkpoint.commits");
  let resumed = Shard_store.load (shard_path 0) in
  Alcotest.(check int) "record count restored"
    (List.length intact_records)
    (List.length resumed.Shard_store.results);
  let recovered =
    Experiments.reduce_shards ~header
      [ resumed; Shard_store.load (shard_path 1) ]
  in
  check_same_data "resumed vs uninterrupted" recovered uninterrupted;
  (* The rendered report is byte-identical too. *)
  Alcotest.(check string) "table3 bytes"
    (Report.render_table (Experiments.table3 uninterrupted))
    (Report.render_table (Experiments.table3 recovered));
  (* Resuming a complete shard is a no-op. *)
  match
    Shard_store.open_writer ~path:(shard_path 0) ~resume:true ~shard:0
      ~shards:2 ~count:header.Stream.count
  with
  | Shard_store.Complete -> ()
  | Shard_store.Writer _ -> Alcotest.fail "complete shard reopened as writer"

let suite =
  [
    Alcotest.test_case "episode record round-trip" `Quick
      test_episode_record_roundtrip;
    Alcotest.test_case "v1 streams stay bit-identical" `Quick
      test_v1_stream_bit_identical;
    Alcotest.test_case "header round-trip" `Slow test_header_roundtrip;
    Alcotest.test_case "scenario round-trip" `Slow test_scenario_roundtrip;
    Alcotest.test_case "result round-trip" `Slow test_result_roundtrip;
    Alcotest.test_case "file pipeline = collect = legacy" `Slow
      test_file_pipeline_matches_collect;
    Alcotest.test_case "crash, resume, identical report" `Slow
      test_crash_resume;
  ]
