module Experiments = Rtr_sim.Experiments
module Report = Rtr_sim.Report
module Isp = Rtr_topo.Isp

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* One small shared collection: 120 cases on the two smallest ASes. *)
let data =
  lazy
    (let config =
       {
         Experiments.presets =
           [ Option.get (Isp.find "AS1239"); Option.get (Isp.find "AS4323") ];
         recoverable_per_topo = 120;
         irrecoverable_per_topo = 120;
         seed = 3;
         mrc_k = None;
         jobs = 1;
       }
     in
     (config, Experiments.collect config))

let test_collect_quotas () =
  let _, data = Lazy.force data in
  Alcotest.(check int) "two topologies" 2 (List.length data);
  List.iter
    (fun (d : Experiments.topo_data) ->
      Alcotest.(check int) "recoverable quota" 120
        (List.length d.Experiments.recoverable);
      Alcotest.(check int) "irrecoverable quota" 120
        (List.length d.Experiments.irrecoverable))
    data

let test_table2 () =
  let config, _ = Lazy.force data in
  let t = Experiments.table2 config in
  Alcotest.(check int) "one row per preset" 2
    (List.length t.Experiments.rows);
  Alcotest.(check (list string)) "first row"
    [ "AS1239"; "52"; "84" ]
    (List.hd t.Experiments.rows)

let cdf_series_ok (f : Experiments.figure) =
  List.iter
    (fun (s : Experiments.series) ->
      let ys = List.map snd s.Experiments.points in
      List.iter
        (fun y ->
          Alcotest.(check bool)
            (s.Experiments.label ^ " y in [0,1]")
            true
            (y >= 0.0 && y <= 1.0))
        ys;
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      Alcotest.(check bool) (s.Experiments.label ^ " monotone") true (mono ys))
    f.Experiments.series

let test_fig7 () =
  let _, data = Lazy.force data in
  let f = Experiments.fig7 data in
  Alcotest.(check int) "one series per AS" 2 (List.length f.Experiments.series);
  cdf_series_ok f

let test_table3_shape_and_claims () =
  let _, data = Lazy.force data in
  let t = Experiments.table3 data in
  Alcotest.(check int) "per-AS plus overall" 3 (List.length t.Experiments.rows);
  List.iter
    (fun row ->
      (* RTR's recovery rate equals its optimal rate (Theorem 2) and
         its max stretch is 1 with exactly one calculation. *)
      let nth i = List.nth row i in
      Alcotest.(check string) "rec = opt" (nth 1) (nth 4);
      Alcotest.(check string) "stretch 1" "1.0" (nth 7);
      Alcotest.(check string) "one calculation" "1" (nth 10))
    t.Experiments.rows

let test_fig8_fig9 () =
  let _, data = Lazy.force data in
  let f8 = Experiments.fig8 data in
  cdf_series_ok f8;
  Alcotest.(check bool) "rtr series present" true
    (List.exists (fun s -> s.Experiments.label = "RTR") f8.Experiments.series);
  let f9 = Experiments.fig9 data in
  cdf_series_ok f9;
  (* RTR's CDF is 1 everywhere: always exactly one calculation. *)
  let rtr = List.hd f9.Experiments.series in
  List.iter
    (fun (_, y) -> Alcotest.(check (float 1e-9)) "rtr flat at 1" 1.0 y)
    rtr.Experiments.points

let test_fig10_shape () =
  let _, data = Lazy.force data in
  let f = Experiments.fig10 data in
  Alcotest.(check int) "rtr+fcp per AS" 4 (List.length f.Experiments.series);
  (* RTR's overhead decays: the value at t=1s is below the value while
     phase 1 is still running at t=0.02s. *)
  (* By t = 1 s every phase-1 walk has finished, so RTR's series ends
     exactly at the mean source-route header of the collected cases. *)
  let d = List.hd data in
  let rtr = List.hd f.Experiments.series in
  Alcotest.(check string) "first series is RTR on the first AS"
    ("RTR " ^ d.Experiments.preset.Isp.as_name)
    rtr.Experiments.label;
  let last_y = snd (List.nth rtr.Experiments.points
                      (List.length rtr.Experiments.points - 1)) in
  let expected =
    Rtr_sim.Stats.mean_int
      (List.map (fun r -> r.Rtr_sim.Runner.rtr_route_bytes)
         d.Experiments.recoverable)
  in
  Alcotest.(check (float 1e-6)) "steady state is the route header" expected
    last_y;
  let peak =
    List.fold_left (fun acc (_, y) -> Float.max acc y) 0.0
      rtr.Experiments.points
  in
  Alcotest.(check bool) "phase 1 carries more than steady state" true
    (peak >= last_y)

let test_fig12_fig13_table4 () =
  let _, data = Lazy.force data in
  cdf_series_ok (Experiments.fig12 data);
  cdf_series_ok (Experiments.fig13 data);
  let t4 = Experiments.table4 data in
  Alcotest.(check int) "rows: 2 AS + overall + savings" 4
    (List.length t4.Experiments.rows);
  let overall = List.nth t4.Experiments.rows 2 in
  (* FCP wastes more than RTR on both axes. *)
  let fcp_calc = float_of_string (List.nth overall 2) in
  let rtr_tx = float_of_string (List.nth overall 5) in
  let fcp_tx = float_of_string (List.nth overall 6) in
  Alcotest.(check bool) "fcp computes more" true (fcp_calc > 1.0);
  Alcotest.(check bool) "fcp transmits more" true (fcp_tx > rtr_tx)

let test_fig11_small () =
  let config, _ = Lazy.force data in
  let f =
    Experiments.fig11 ~areas_per_radius:5 ~radii:[ 50.0; 250.0 ] config
  in
  Alcotest.(check int) "series per AS" 2 (List.length f.Experiments.series);
  List.iter
    (fun (s : Experiments.series) ->
      List.iter
        (fun (_, y) ->
          Alcotest.(check bool) "percentage range" true (y >= 0.0 && y <= 100.0))
        s.Experiments.points)
    f.Experiments.series

let test_ablation_constraints_shape () =
  let config, _ = Lazy.force data in
  let t = Experiments.ablation_constraints ~cases:40 config in
  Alcotest.(check int) "row per AS" 2 (List.length t.Experiments.rows);
  List.iter
    (fun row -> Alcotest.(check int) "eight columns" 8 (List.length row))
    t.Experiments.rows

let test_extension_bidir_shape () =
  let config, _ = Lazy.force data in
  let t = Experiments.extension_bidir ~cases:40 config in
  List.iter
    (fun row ->
      (* the merged collection can only help *)
      let f i = float_of_string (List.nth row i) in
      Alcotest.(check bool) "merged E1 >= single E1" true (f 5 >= f 4 -. 1e-9);
      Alcotest.(check bool) "merged recovery >= single" true (f 7 >= f 6 -. 1e-9))
    t.Experiments.rows

let test_ablation_mrc_k_shape () =
  let config, _ = Lazy.force data in
  let t = Experiments.ablation_mrc_k ~cases:40 ~ks:[ 4; 8 ] config in
  Alcotest.(check (list string)) "header" [ "Topology"; "k=4"; "k=8" ]
    t.Experiments.header;
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i > 0 && cell <> "infeasible" then
            let v = float_of_string cell in
            Alcotest.(check bool) "percentage" true (v >= 0.0 && v <= 100.0))
        row)
    t.Experiments.rows

let test_instance_variance_shape () =
  let config, _ = Lazy.force data in
  let t = Experiments.instance_variance ~cases:30 ~instances:2 config in
  List.iter
    (fun row ->
      let f i = float_of_string (List.nth row i) in
      Alcotest.(check bool) "min <= mean <= max" true
        (f 2 <= f 1 +. 1e-9 && f 1 <= f 3 +. 1e-9);
      Alcotest.(check (float 1e-6)) "spread = max - min" (f 3 -. f 2) (f 4))
    t.Experiments.rows

(* The tentpole guarantee: collecting on several worker domains yields
   data structurally identical to the sequential collection — same
   cases, same results, same order. *)
let test_jobs_equivalence () =
  let config, seq = Lazy.force data in
  let par = Experiments.collect { config with Experiments.jobs = 4 } in
  Alcotest.(check int) "same topology count" (List.length seq)
    (List.length par);
  List.iter2
    (fun (a : Experiments.topo_data) (b : Experiments.topo_data) ->
      Alcotest.(check string) "same preset" a.Experiments.preset.Isp.as_name
        b.Experiments.preset.Isp.as_name;
      Alcotest.(check int) "same mrc configs" a.Experiments.mrc_configs
        b.Experiments.mrc_configs;
      Alcotest.(check bool) "recoverable results identical" true
        (a.Experiments.recoverable = b.Experiments.recoverable);
      Alcotest.(check bool) "irrecoverable results identical" true
        (a.Experiments.irrecoverable = b.Experiments.irrecoverable))
    seq par

let test_report_rendering () =
  let config, data = Lazy.force data in
  let table_text = Report.render_table (Experiments.table2 config) in
  Alcotest.(check bool) "table mentions AS1239" true
    (contains ~affix:"AS1239" table_text);
  let fig_text = Report.render_figure (Experiments.fig7 data) in
  Alcotest.(check bool) "figure has title" true
    (contains ~affix:"Fig. 7" fig_text);
  let csv = Report.figure_to_csv (Experiments.fig7 data) in
  Alcotest.(check bool) "csv header" true
    (contains ~affix:"AS1239" csv)

let suite =
  [
    Alcotest.test_case "collect quotas" `Slow test_collect_quotas;
    Alcotest.test_case "table2" `Slow test_table2;
    Alcotest.test_case "fig7" `Slow test_fig7;
    Alcotest.test_case "table3 claims" `Slow test_table3_shape_and_claims;
    Alcotest.test_case "fig8/fig9" `Slow test_fig8_fig9;
    Alcotest.test_case "fig10 shape" `Slow test_fig10_shape;
    Alcotest.test_case "fig12/fig13/table4" `Slow test_fig12_fig13_table4;
    Alcotest.test_case "fig11 small" `Slow test_fig11_small;
    Alcotest.test_case "ablation constraints shape" `Slow
      test_ablation_constraints_shape;
    Alcotest.test_case "extension bidir shape" `Slow test_extension_bidir_shape;
    Alcotest.test_case "ablation mrc-k shape" `Slow test_ablation_mrc_k_shape;
    Alcotest.test_case "instance variance shape" `Slow
      test_instance_variance_shape;
    Alcotest.test_case "jobs=4 equals jobs=1" `Slow test_jobs_equivalence;
    Alcotest.test_case "report rendering" `Slow test_report_rendering;
  ]
