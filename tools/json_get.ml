(* Print leaf values out of a metrics/manifest JSON file, one per line.

   usage: json_get FILE PATH...

   PATH segments are separated by '/' because metric names themselves
   contain dots: metrics/gauges/bench.cases_per_sec.reproduce.  A
   missing path or non-leaf target is an error — the perf gate must
   fail loudly on a renamed gauge, not compare against garbage. *)

let () =
  match Array.to_list Sys.argv with
  | _ :: file :: (_ :: _ as paths) -> (
      match
        Rtr_obs.Json.parse
          (String.trim (Rtr_tools.Json_tools.read_file file))
      with
      | exception Sys_error msg ->
          Printf.eprintf "json_get: %s\n" msg;
          exit 1
      | Error msg ->
          Printf.eprintf "json_get: %s: malformed JSON: %s\n" file msg;
          exit 1
      | Ok doc ->
          List.iter
            (fun path ->
              let segs = String.split_on_char '/' path in
              match Rtr_tools.Json_tools.get ~path:segs doc with
              | None ->
                  Printf.eprintf "json_get: %s: no such path: %s\n" file path;
                  exit 1
              | Some leaf -> (
                  match Rtr_tools.Json_tools.scalar_to_string leaf with
                  | Some s -> print_endline s
                  | None ->
                      Printf.eprintf "json_get: %s: not a leaf: %s\n" file path;
                      exit 1))
            paths)
  | _ ->
      prerr_endline "usage: json_get FILE PATH...";
      exit 1
