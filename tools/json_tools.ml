module Json = Rtr_obs.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec strip ~prefixes (j : Json.t) = strip_at prefixes "" j

and strip_at prefixes path = function
  | Json.Obj members ->
      Json.Obj
        (List.filter_map
           (fun (k, v) ->
             let p = if path = "" then k else path ^ "." ^ k in
             if List.exists (fun pre -> String.starts_with ~prefix:pre p)
                  prefixes
             then None
             else Some (k, strip_at prefixes p v))
           members)
  | Json.Arr items ->
      (* Array elements keep their parent's path: stripping applies to
         named members, not positions. *)
      Json.Arr (List.map (strip_at prefixes path) items)
  | other -> other

let usage = "usage: json_canon [--strip DOTTED.PATH.PREFIX]... FILE"

let parse_canon_args args =
  let rec go prefixes = function
    | [] | [ "--strip" ] -> Error usage
    | "--strip" :: p :: rest -> go (p :: prefixes) rest
    | [ file ] -> Ok (List.rev prefixes, file)
    | _ -> Error usage
  in
  go [] args

let canon ~prefixes file =
  match Json.parse (String.trim (read_file file)) with
  | exception Sys_error msg -> Error (Printf.sprintf "%s: %s" file msg)
  | Error msg -> Error (Printf.sprintf "%s: malformed JSON: %s" file msg)
  | Ok doc -> Ok (Json.to_string (strip ~prefixes doc))

(* Metric names themselves contain dots ("bench.cases_per_sec.reproduce"
   is one gauge key), so tree paths use '/' as the segment separator. *)
let get ~path doc =
  List.fold_left
    (fun acc seg -> Option.bind acc (Json.member seg))
    (Some doc) path

let scalar_to_string = function
  | Json.Null -> Some "null"
  | Json.Bool b -> Some (string_of_bool b)
  | Json.Int i -> Some (string_of_int i)
  | Json.Float f -> Some (Printf.sprintf "%.12g" f)
  | Json.String s -> Some s
  | Json.Arr _ | Json.Obj _ -> None

type problem = { where : string; message : string }

let check_content ~path contents =
  if Filename.check_suffix path ".jsonl" then
    String.split_on_char '\n' contents
    |> List.mapi (fun i line -> (i + 1, line))
    |> List.filter_map (fun (lineno, line) ->
           if String.trim line = "" then None
           else
             match Json.parse line with
             | Ok _ -> None
             | Error msg ->
                 Some
                   {
                     where = Printf.sprintf "%s:%d" path lineno;
                     message = "malformed JSON: " ^ msg;
                   })
  else
    match Json.parse (String.trim contents) with
    | Ok _ -> []
    | Error msg -> [ { where = path; message = "malformed JSON: " ^ msg } ]

let check_file path =
  match read_file path with
  | exception Sys_error msg -> [ { where = path; message = msg } ]
  | contents -> check_content ~path contents
