(* json_canon [--strip PREFIX]... FILE: parse one JSON document, drop
   every object member whose dotted path starts with one of the given
   prefixes, and print the compact canonical rendering.  The CI
   determinism gate uses it to compare metrics files modulo the fields
   that legitimately vary run to run (the manifest's argv/wall-clock,
   the pool's scheduling metrics). *)

let usage () =
  prerr_endline "usage: json_canon [--strip DOTTED.PATH.PREFIX]... FILE";
  exit 2

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec strip prefixes path (j : Rtr_obs.Json.t) =
  match j with
  | Rtr_obs.Json.Obj members ->
      Rtr_obs.Json.Obj
        (List.filter_map
           (fun (k, v) ->
             let p = if path = "" then k else path ^ "." ^ k in
             if List.exists (fun pre -> String.starts_with ~prefix:pre p)
                  prefixes
             then None
             else Some (k, strip prefixes p v))
           members)
  | Rtr_obs.Json.Arr items ->
      (* Array elements keep their parent's path: stripping applies to
         named members, not positions. *)
      Rtr_obs.Json.Arr (List.map (strip prefixes path) items)
  | other -> other

let () =
  let rec parse_args prefixes = function
    | [] -> usage ()
    | [ "--strip" ] -> usage ()
    | "--strip" :: p :: rest -> parse_args (p :: prefixes) rest
    | [ file ] -> (List.rev prefixes, file)
    | _ -> usage ()
  in
  let prefixes, file =
    parse_args [] (List.tl (Array.to_list Sys.argv))
  in
  match Rtr_obs.Json.parse (String.trim (read_file file)) with
  | exception Sys_error msg ->
      Printf.eprintf "%s: %s\n" file msg;
      exit 1
  | Error msg ->
      Printf.eprintf "%s: malformed JSON: %s\n" file msg;
      exit 1
  | Ok doc ->
      print_string (Rtr_obs.Json.to_string (strip prefixes "" doc));
      print_newline ()
