(* json_canon [--strip PREFIX]... FILE: parse one JSON document, drop
   every object member whose dotted path starts with one of the given
   prefixes, and print the compact canonical rendering.  The CI
   determinism gate uses it to compare metrics files modulo the fields
   that legitimately vary run to run (the manifest's argv/wall-clock,
   the pool's scheduling metrics).  All logic lives in
   [Rtr_tools.Json_tools]. *)

let () =
  match
    Rtr_tools.Json_tools.parse_canon_args (List.tl (Array.to_list Sys.argv))
  with
  | Error usage ->
      prerr_endline usage;
      exit 2
  | Ok (prefixes, file) -> (
      match Rtr_tools.Json_tools.canon ~prefixes file with
      | Error msg ->
          prerr_endline msg;
          exit 1
      | Ok line ->
          print_string line;
          print_newline ())
