(* json_check FILE...: validate observability artifacts.  A .jsonl file
   must contain one well-formed JSON value per non-empty line; anything
   else must be a single well-formed JSON document.  Every file is
   checked and every problem reported; exit 1 if any file is malformed,
   so CI can gate on emitted artifacts. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_line path lineno line =
  match Rtr_obs.Json.parse line with
  | Ok _ -> true
  | Error msg ->
      Printf.eprintf "%s:%d: malformed JSON: %s\n" path lineno msg;
      false

let check_file path =
  match read_file path with
  | exception Sys_error msg ->
      Printf.eprintf "%s: %s\n" path msg;
      false
  | contents ->
      if Filename.check_suffix path ".jsonl" then begin
        let ok = ref true in
        let lines = String.split_on_char '\n' contents in
        List.iteri
          (fun i line ->
            if String.trim line <> "" then
              ok := check_line path (i + 1) line && !ok)
          lines;
        !ok
      end
      else
        match Rtr_obs.Json.parse (String.trim contents) with
        | Ok _ -> true
        | Error msg ->
            Printf.eprintf "%s: malformed JSON: %s\n" path msg;
            false

let () =
  let files =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as files) -> files
    | _ ->
        (* A glob that expanded to nothing must fail loudly, not
           "validate" zero files. *)
        prerr_endline "json_check: no files given";
        prerr_endline "usage: json_check FILE...";
        exit 2
  in
  let all_ok =
    List.fold_left (fun acc file -> check_file file && acc) true files
  in
  if all_ok then
    Printf.printf "json_check: %d file(s) OK\n" (List.length files)
  else exit 1
