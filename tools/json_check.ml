(* json_check FILE...: validate observability artifacts.  A .jsonl file
   must contain one well-formed JSON value per non-empty line; anything
   else must be a single well-formed JSON document.  Every file is
   checked and every problem reported; exit 1 if any file is malformed,
   so CI can gate on emitted artifacts.  All logic lives in
   [Rtr_tools.Json_tools]. *)

let () =
  let files =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as files) -> files
    | _ ->
        (* A glob that expanded to nothing must fail loudly, not
           "validate" zero files. *)
        prerr_endline "json_check: no files given";
        prerr_endline "usage: json_check FILE...";
        exit 2
  in
  let problems = List.concat_map Rtr_tools.Json_tools.check_file files in
  List.iter
    (fun { Rtr_tools.Json_tools.where; message } ->
      Printf.eprintf "%s: %s\n" where message)
    problems;
  if problems = [] then
    Printf.printf "json_check: %d file(s) OK\n" (List.length files)
  else exit 1
