(** The logic behind the [json_canon] and [json_check] executables,
    split out as a library so the test suite can cover canonicalisation
    and validation without spawning processes. *)

val read_file : string -> string
(** Whole file, binary mode.  Raises [Sys_error] like [open_in]. *)

val strip : prefixes:string list -> Rtr_obs.Json.t -> Rtr_obs.Json.t
(** Drop every object member whose dotted path starts with one of
    [prefixes].  Array elements keep their parent's path: stripping
    applies to named members, not positions. *)

val parse_canon_args : string list -> (string list * string, string) result
(** Parse [json_canon]'s argument list (excluding [argv.(0)]) into
    [(strip_prefixes, file)].  [Error usage] for an empty list, a
    trailing [--strip], or more than one file. *)

val canon : prefixes:string list -> string -> (string, string) result
(** Read [file], parse, strip, and return the compact canonical
    rendering (no trailing newline).  [Error] carries the message the
    executable prints. *)

val get : path:string list -> Rtr_obs.Json.t -> Rtr_obs.Json.t option
(** Walk object members segment by segment.  Segments are full member
    keys — metric names contain dots, so callers split on ['/'], not
    ['.'] (e.g. [["metrics"; "gauges"; "bench.cases_per_sec.reproduce"]]). *)

val scalar_to_string : Rtr_obs.Json.t -> string option
(** Bare rendering of a leaf (no quotes around strings, [%.12g] floats)
    for shell consumption; [None] on arrays and objects. *)

type problem = { where : string; message : string }
(** [where] is ["path"] or ["path:LINE"] for .jsonl files. *)

val check_content : path:string -> string -> problem list
(** Validate file contents: one JSON value per non-empty line when
    [path] ends in [.jsonl], a single document otherwise. *)

val check_file : string -> problem list
(** [check_content] over the file on disk; unreadable files yield one
    problem. *)
